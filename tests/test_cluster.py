"""Cluster simulator: DES kernel, resources, cost model, timelines."""

import pytest

from repro.cluster.cluster import HOME, ClusterSimulation
from repro.cluster.costs import CostModel
from repro.cluster.events import Simulator
from repro.cluster.fileserver import FileServer
from repro.cluster.network import SharedResource, ethernet_efficiency
from repro.cluster.workstation import MachinePool, Workstation
from repro.driver.results import FunctionReport, WorkProfile
from repro.parallel.schedule import (
    fcfs_assignment,
    grouped_lpt_assignment,
    one_function_per_processor,
)


class TestSimulator:
    def test_events_fire_in_time_order(self):
        sim = Simulator()
        fired = []
        sim.schedule(5.0, lambda: fired.append("b"))
        sim.schedule(1.0, lambda: fired.append("a"))
        sim.schedule(9.0, lambda: fired.append("c"))
        end = sim.run()
        assert fired == ["a", "b", "c"]
        assert end == 9.0

    def test_same_time_events_in_schedule_order(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, lambda: fired.append(1))
        sim.schedule(1.0, lambda: fired.append(2))
        sim.run()
        assert fired == [1, 2]

    def test_events_may_schedule_events(self):
        sim = Simulator()
        fired = []

        def first():
            fired.append(sim.now)
            sim.schedule(2.0, lambda: fired.append(sim.now))

        sim.schedule(1.0, first)
        sim.run()
        assert fired == [1.0, 3.0]

    def test_negative_delay_rejected(self):
        with pytest.raises(ValueError):
            Simulator().schedule(-1.0, lambda: None)


class TestSharedResource:
    def test_single_task_runs_at_full_rate(self):
        sim = Simulator()
        res = SharedResource(sim, "r", rate=10.0)
        done = []
        res.submit(100.0, lambda: done.append(sim.now))
        sim.run()
        assert done == [pytest.approx(10.0)]

    def test_two_tasks_share_capacity(self):
        sim = Simulator()
        res = SharedResource(sim, "r", rate=10.0)
        done = []
        res.submit(100.0, lambda: done.append(("a", sim.now)))
        res.submit(100.0, lambda: done.append(("b", sim.now)))
        sim.run()
        # Equal demands started together finish together at 2x the time.
        assert done[0][1] == pytest.approx(20.0)
        assert done[1][1] == pytest.approx(20.0)

    def test_late_arrival_processor_sharing(self):
        sim = Simulator()
        res = SharedResource(sim, "r", rate=10.0)
        done = {}
        res.submit(100.0, lambda: done.setdefault("a", sim.now))
        sim.schedule(5.0, lambda: res.submit(50.0, lambda: done.setdefault("b", sim.now)))
        sim.run()
        # a: 50 done by t=5, shares until b finishes.
        # From t=5: each gets 5/s. b needs 10s -> b at 15; a has 50-50=0...
        # a remaining at t=5 is 50; both run 10s: a done at 15 too.
        assert done["a"] == pytest.approx(15.0)
        assert done["b"] == pytest.approx(15.0)

    def test_efficiency_degrades_aggregate_rate(self):
        sim = Simulator()
        res = SharedResource(
            sim, "eth", rate=10.0, efficiency=ethernet_efficiency(0.5)
        )
        done = []
        res.submit(50.0, lambda: done.append(sim.now))
        res.submit(50.0, lambda: done.append(sim.now))
        sim.run()
        # eff(2) = 1/1.5; per-task rate = 10/1.5/2 = 3.33...; 50/3.33 = 15
        assert done[0] == pytest.approx(15.0)

    def test_zero_demand_completes_immediately(self):
        sim = Simulator()
        res = SharedResource(sim, "r", rate=1.0)
        done = []
        res.submit(0.0, lambda: done.append(sim.now))
        sim.run()
        assert done == [0.0]

    def test_many_tasks_all_complete(self):
        sim = Simulator()
        res = SharedResource(sim, "r", rate=7.0)
        done = []
        for i in range(25):
            res.submit(float(i + 1), lambda: done.append(sim.now))
        sim.run()
        assert len(done) == 25

    def test_busy_time_tracked(self):
        sim = Simulator()
        res = SharedResource(sim, "r", rate=10.0)
        res.submit(100.0, lambda: None)
        sim.run()
        assert res.busy_time == pytest.approx(10.0)


class TestWorkstationAndServer:
    def test_cpu_busy_accumulates(self):
        sim = Simulator()
        ws = Workstation("w", sim)
        ws.run_cpu(3.0, lambda: None)
        ws.run_cpu(2.0, lambda: None)
        sim.run()
        assert ws.cpu_busy == 5.0

    def test_machine_pool(self):
        sim = Simulator()
        pool = MachinePool(sim, ["a", "b"])
        pool["a"].run_cpu(1.0, lambda: None)
        sim.run()
        assert pool.busy_times() == {"a": 1.0, "b": 0.0}

    def test_file_server_requests(self):
        sim = Simulator()
        server = FileServer(sim, rate=100.0)
        done = []
        server.request(50.0, lambda: done.append(sim.now))
        sim.run()
        assert done == [pytest.approx(0.5)]


def make_profile(work_list, lines=50, ir=200, loops=2, bundles=100):
    """A hand-built profile with the given per-function work units."""
    profile = WorkProfile(
        parse_work=1000, sema_work=500, source_lines=lines * len(work_list)
    )
    for index, work in enumerate(work_list):
        profile.functions.append(
            FunctionReport(
                section_name="s",
                name=f"f{index}",
                source_lines=lines,
                ir_instructions=ir,
                loop_weight=100,
                work_units=work,
                bundles=bundles,
                pipelined_loops=loops,
            )
        )
    profile.assembly_work = 1000
    profile.link_work = 100
    profile.download_words = 5000
    return profile


class TestCostModel:
    def test_slowdown_is_one_below_onset(self):
        c = CostModel()
        assert c.slowdown(0.1 * c.workstation_memory) == 1.0

    def test_slowdown_monotone(self):
        c = CostModel()
        heaps = [0.4, 0.7, 1.0, 1.3, 2.0]
        values = [c.slowdown(h * c.workstation_memory) for h in heaps]
        assert values == sorted(values)

    def test_slowdown_saturates(self):
        c = CostModel()
        assert c.slowdown(100 * c.workstation_memory) <= 1 + c.max_extra_slowdown

    def test_paging_zero_when_fitting(self):
        c = CostModel()
        assert c.paging_words(0.9 * c.workstation_memory, 100.0) == 0.0

    def test_paging_grows_with_excess(self):
        c = CostModel()
        small = c.paging_words(1.1 * c.workstation_memory, 100.0)
        big = c.paging_words(1.5 * c.workstation_memory, 100.0)
        assert 0 < small < big

    def test_sequential_heap_grows_with_index(self):
        c = CostModel()
        profile = make_profile([1000] * 4)
        heaps = [c.sequential_heap(profile, k) for k in range(4)]
        assert heaps[0] < heaps[-1]

    def test_sequential_heap_capped(self):
        c = CostModel()
        profile = make_profile([1000] * 50, ir=2000, bundles=5000)
        gap = c.sequential_heap(profile, 49) - c.sequential_heap(profile, 0)
        assert gap <= c.retained_cap

    def test_function_master_heap_independent_of_order(self):
        c = CostModel()
        profile = make_profile([1000, 2000])
        assert c.function_master_heap(
            profile, profile.functions[0]
        ) == pytest.approx(
            c.function_master_heap(profile, profile.functions[0])
        )

    def test_compile_seconds_components(self):
        c = CostModel()
        report = make_profile([9000]).functions[0]
        expected = (
            c.per_function_compile_sec
            + 2 * c.pipeline_sec_per_loop
            + 9000 / c.compile_rate
        )
        assert c.compile_seconds(report) == pytest.approx(expected)


class TestTimelines:
    def test_sequential_elapsed_exceeds_cpu(self):
        sim = ClusterSimulation()
        report = sim.run_sequential(make_profile([50000] * 2))
        assert report.elapsed > report.cpu_busy[HOME] > 0

    def test_parallel_uses_assigned_machines(self):
        sim = ClusterSimulation()
        profile = make_profile([50000] * 3)
        report = sim.run_parallel(
            profile, one_function_per_processor(profile.functions)
        )
        busy_machines = [m for m, t in report.cpu_busy.items() if t > 0]
        assert set(busy_machines) == {HOME, "ws0", "ws1", "ws2"}

    def test_parallel_beats_sequential_for_big_equal_tasks(self):
        sim = ClusterSimulation()
        profile = make_profile([2_000_000] * 4)
        seq = sim.run_sequential(profile)
        par = sim.run_parallel(
            profile, one_function_per_processor(profile.functions)
        )
        assert par.elapsed < seq.elapsed

    def test_parallel_loses_for_tiny_tasks(self):
        sim = ClusterSimulation()
        profile = make_profile([50] * 4, loops=0)
        seq = sim.run_sequential(profile)
        par = sim.run_parallel(
            profile, one_function_per_processor(profile.functions)
        )
        assert par.elapsed > seq.elapsed

    def test_spans_cover_all_functions(self):
        sim = ClusterSimulation()
        profile = make_profile([10000] * 5)
        par = sim.run_parallel(
            profile, fcfs_assignment(profile.functions, 2)
        )
        assert len(par.spans) == 5
        for span in par.spans:
            assert span.end > span.compute_start >= span.start

    def test_fcfs_queues_tasks_on_same_machine(self):
        sim = ClusterSimulation()
        profile = make_profile([10000] * 4)
        par = sim.run_parallel(profile, fcfs_assignment(profile.functions, 2))
        by_machine = {}
        for span in par.spans:
            by_machine.setdefault(span.machine, []).append(span)
        for spans in by_machine.values():
            spans.sort(key=lambda s: s.start)
            for a, b in zip(spans, spans[1:]):
                assert b.start >= a.end  # FIFO, no overlap on one machine

    def test_implementation_overhead_components(self):
        sim = ClusterSimulation()
        profile = make_profile([10000] * 2)
        par = sim.run_parallel(
            profile, one_function_per_processor(profile.functions)
        )
        assert par.master_cpu > 0
        assert par.section_cpu > 0
        assert par.parse_once_cpu > 0
        assert par.implementation_overhead == pytest.approx(
            par.master_cpu + par.section_cpu + par.parse_once_cpu
        )

    def test_deterministic(self):
        sim = ClusterSimulation()
        profile = make_profile([12345, 6789, 10111])
        a = sim.run_parallel(profile, fcfs_assignment(profile.functions, 2))
        b = sim.run_parallel(profile, fcfs_assignment(profile.functions, 2))
        assert a.elapsed == b.elapsed
        assert a.cpu_busy == b.cpu_busy


class TestSchedulingStrategies:
    def test_one_per_processor(self):
        profile = make_profile([1, 2, 3])
        a = one_function_per_processor(profile.functions)
        assert a.per_machine == [[0], [1], [2]]

    def test_fcfs_respects_source_order_per_machine(self):
        profile = make_profile([100] * 6)
        a = fcfs_assignment(profile.functions, 2)
        for tasks in a.per_machine:
            assert tasks == sorted(tasks)

    def test_grouped_lpt_balances_mixed_sizes(self):
        profile = make_profile([1000, 10, 10, 10, 10, 10])
        # Make the big function's cost estimate dominate.
        profile.functions[0].source_lines = 300
        profile.functions[0].loop_weight = 50000
        a = grouped_lpt_assignment(profile.functions, 2)
        machine_of_big = a.machine_of(0)
        # The big one should be alone (or nearly) on its machine.
        assert len(a.per_machine[machine_of_big]) <= 2

    def test_invalid_processor_count(self):
        profile = make_profile([1])
        with pytest.raises(ValueError):
            fcfs_assignment(profile.functions, 0)
        with pytest.raises(ValueError):
            grouped_lpt_assignment(profile.functions, 0)
