"""Assembly, linking, I/O driver generation, and download modules."""

from .assembler import AssemblyError, assemble_function, assembly_work_units
from .download import build_download_module, module_digest, module_size_words
from .encode import (
    FormatError,
    decode_module,
    encode_module,
    read_module,
    write_module,
)
from .iodriver import CellIOProfile, IODriver, build_io_driver
from .linker import LinkError, link_section, link_work_units
from .objformat import (
    AssembledFunction,
    Bundle,
    CellProgram,
    CodegenInfo,
    DownloadModule,
    MachineOp,
    ObjectFunction,
    ScheduledBlock,
)
from .parallel_assembler import ParallelAssemblyResult, assemble_parallel

__all__ = [
    "AssembledFunction",
    "AssemblyError",
    "Bundle",
    "CellIOProfile",
    "CellProgram",
    "CodegenInfo",
    "DownloadModule",
    "FormatError",
    "IODriver",
    "LinkError",
    "MachineOp",
    "ObjectFunction",
    "ParallelAssemblyResult",
    "ScheduledBlock",
    "assemble_function",
    "assemble_parallel",
    "assembly_work_units",
    "build_download_module",
    "build_io_driver",
    "decode_module",
    "encode_module",
    "link_section",
    "link_work_units",
    "module_digest",
    "module_size_words",
    "read_module",
    "write_module",
]
