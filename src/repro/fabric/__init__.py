"""Distributed compile fabric: remote worker nodes over JSON lines.

The paper's host was "an Ethernet network of diskless SUN workstations";
everything so far has emulated that fleet with local OS processes.  This
package puts the network back: a central :class:`~repro.fabric.hub.FabricHub`
schedules function-master tasks onto worker-node agents
(:class:`~repro.fabric.node.WorkerNodeAgent`, ``warpcc worker``) that each
front a machine's warm pool, and :class:`~repro.fabric.hub.RemoteBackend`
exposes the fleet through the standard ``run_tasks_streaming`` surface so
the driver, :class:`~repro.parallel.supervisor.SupervisedBackend`, the
compile service, and the fuzz oracle compose unchanged.

Robustness model (see INTERNALS.md §Distributed fabric):

- node registration grants a *lease* renewed by heartbeats; a silent
  node's lease expires and its unacknowledged tasks are re-queued;
- results are deduplicated by task key — first result wins, exactly the
  hedging rule the supervisor already applies;
- every task and result crossing the wire carries a content digest, and
  results are additionally re-validated against their sealed
  ``payload_digest`` before the hub will route them;
- zero live nodes degrades gracefully to the local fallback pool;
- the two-tier artifact cache (:mod:`repro.fabric.netcache`) treats
  every network-tier failure as a miss — cache trouble can cost a
  recompile, never a wrong artifact and never a failed compile.

Security model: pickled payloads are only ever decoded through a
closed-allowlist unpickler, and setting ``WARPCC_FABRIC_SECRET`` on
every hub, worker, and cache process additionally authenticates node
registration (challenge-response) and every blob (HMAC-SHA256,
constant-time compared before unpickling).  Without the secret the
ports are unauthenticated and must only be exposed on trusted networks
— the defaults bind 127.0.0.1.
"""

from .chaos import CacheChaos, FabricChaos
from .hub import FabricHub, FabricStats, RemoteBackend
from .netcache import (
    CacheServiceServer,
    NetworkBlobStore,
    NetworkCacheClient,
    TieredCache,
)
from .node import WorkerNodeAgent
from .wire import (
    FABRIC_SECRET_ENV,
    AuthenticationError,
    Connection,
    ProtocolError,
    WireCorruption,
    backoff_delays,
    decode_frame,
    fabric_secret,
    read_frame_line,
)

__all__ = [
    "AuthenticationError",
    "CacheChaos",
    "CacheServiceServer",
    "Connection",
    "FABRIC_SECRET_ENV",
    "FabricChaos",
    "FabricHub",
    "FabricStats",
    "NetworkBlobStore",
    "NetworkCacheClient",
    "ProtocolError",
    "RemoteBackend",
    "TieredCache",
    "WireCorruption",
    "WorkerNodeAgent",
    "backoff_delays",
    "decode_frame",
    "fabric_secret",
    "read_frame_line",
]
