"""A systolic low-level-vision pipeline — the workload Warp was built for.

Three single-cell sections process a stream of pixel rows:

  stage 1 (cell 0): two-tap smoothing of each sample
  stage 2 (cell 1): gradient (difference against the previous sample)
  stage 3 (cell 2): magnitude thresholding

Because the three section programs are different functions, the parallel
compiler translates them concurrently — exactly the usage model that
motivated the paper ("an application program for the Warp array contains
different programs for different processing elements", §3).

Run:  python examples/vision_pipeline.py
"""

from repro import ParallelCompiler, SequentialCompiler, run_module
from repro.parallel import SerialBackend

PIXELS = 24

SOURCE = f"""
module vision
section smooth_stage (cells 0..0)
  function smooth(center: float, side: float) : float
  begin
    return center * 0.5 + side * 0.5;
  end
  function main()
  var v, prev: float; k: int;
  begin
    prev := 0.0;
    for k := 1 to {PIXELS} do
      receive(v);
      send(smooth(v, prev));
      prev := v;
    end;
  end
end
section gradient_stage (cells 1..1)
  function main()
  var v, prev: float; k: int;
  begin
    prev := 0.0;
    for k := 1 to {PIXELS} do
      receive(v);
      send(sqrt((v - prev) * (v - prev)));
      prev := v;
    end;
  end
end
section threshold_stage (cells 2..2)
  function main()
  var v: float; k: int;
  begin
    for k := 1 to {PIXELS} do
      receive(v);
      if v >= 0.15 then
        send(1.0);
      else
        send(0.0);
      end;
    end;
  end
end
end
"""


def synthetic_scanline():
    """A step edge with noise-free ramps: pixels 0..23."""
    row = []
    for i in range(PIXELS):
        if i < 8:
            row.append(0.1)
        elif i < 12:
            row.append(0.1 + 0.2 * (i - 7))
        else:
            row.append(0.9)
    return row


def main() -> None:
    compiler = SequentialCompiler()
    result = compiler.compile(SOURCE)
    print("sections compiled:")
    for fn in result.profile.functions:
        print(
            f"  {fn.section_name}.{fn.name}: {fn.work_units} work units, "
            f"{fn.bundles} bundles"
        )

    # The parallel compiler translates the three different section
    # programs (and their functions) concurrently — same artifact.
    parallel = ParallelCompiler(backend=SerialBackend()).compile(SOURCE)
    assert parallel.digest == result.digest

    row = synthetic_scanline()
    outputs = run_module(result.download, row)
    edge_map = outputs.output_floats()
    print("input row :", " ".join(f"{v:.1f}" for v in row))
    print("edge map  :", " ".join(f"{v:.0f}" for v in edge_map))
    print(f"array time: {outputs.cycles} cycles for {PIXELS} pixels")
    detected = [i for i, v in enumerate(edge_map) if v == 1.0]
    print("edges detected at pixel positions:", detected)


if __name__ == "__main__":
    main()
