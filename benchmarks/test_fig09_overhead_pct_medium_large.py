"""Figure 9: overheads as a percentage of total time, f_medium / f_large.

Paper: "The system overhead is negative if the number of functions is
small ... the sequential compiler processes a program that does not fit
into the local memory and system space of a single workstation."  And:
"Of all functions, f_large has the smallest overhead (<= 25%)."

Calibration note (see EXPERIMENTS.md): at the default cost model the
medium-size system overhead at n<=2 lands at a small positive value
rather than a small negative one; the paper's mechanism (sequential-
compiler memory pressure) is demonstrated explicitly in
test_ablation_memory_pressure.py, where raising the retained-heap
pressure drives this same quantity negative.
"""

from figures_common import relative_overhead_figure, write_figure
from repro.workloads.sizes import FUNCTION_COUNTS


def test_fig09_overhead_medium_large(benchmark, results_dir):
    fig = benchmark(relative_overhead_figure, ["medium", "large"], "Figure 9")
    write_figure(results_dir, fig)

    medium_total = fig.series_named("rel. total overhead f_medium")
    medium_system = fig.series_named("rel. system overhead f_medium")
    large_total = fig.series_named("rel. total overhead f_large")

    # f_large has the smallest overhead, <= 25% at every n.
    for n in FUNCTION_COUNTS:
        assert large_total.points[n] <= 25.0
        assert large_total.points[n] <= medium_total.points[n]

    # Medium system overhead at small n is near zero (within a few % of
    # the elapsed time) — the sequential compiler is already paying for
    # its memory appetite, offsetting the parallel overheads.
    for n in (1, 2):
        assert medium_system.points[n] <= 8.0

    # Relative overhead increases with the number of functions.
    values = [medium_total.points[n] for n in FUNCTION_COUNTS]
    assert values == sorted(values)
