"""The variant-search scoring seam: warpsim as a measured oracle.

ComPar-style variant search needs one number per compiled variant —
"how fast is this module on representative inputs?" — and one semantic
check — "does it still compute the same thing?".  Both come from the
functional simulator: :func:`score_module` runs a download module over a
list of input sets and returns the summed cycle count plus the observed
outputs (or a classified failure; a variant that traps is disqualified,
never shipped).

The cycle model is *pinned*: :data:`SCORING_SCHEMA_VERSION` is part of
the variant-score cache salt, and ``tests/test_warpsim_cycles.py``
asserts exact cycle counts for canonical programs.  A change to the
simulator's timing semantics must bump the version (invalidating every
cached score) and update the fixtures — it can never silently flip
search winners.

Input sets are either *recorded* (caller-supplied streams) or
*seeded-synthetic* (:func:`seeded_input_sets`): deterministic floats
derived from an explicit seed, so the same (source, variant space,
input seed) always reproduces the same winners and the same output
digest.  :func:`input_set_digest` is the canonical key component for
cached scores.
"""

from __future__ import annotations

import hashlib
import random
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple, Union

from ..asmlink.objformat import DownloadModule
from ..machine.warp_array import WarpArrayModel
from .array_runner import run_module

Number = Union[int, float]

#: Bump whenever the simulator's *timing* semantics change (bundle
#: latencies, stall rules, queue capacities).  Part of the variant-score
#: cache salt: stale scores become unreachable, not wrong.
SCORING_SCHEMA_VERSION = 1

#: Default ceiling for scoring runs — far above any benchmark kernel,
#: low enough that a pathological variant fails fast.
DEFAULT_SCORE_MAX_CYCLES = 2_000_000


@dataclass(frozen=True)
class ModuleScore:
    """One module's measured behaviour over a list of input sets.

    ``cycles`` sums the per-set cycle counts; ``outputs`` is a tuple of
    per-set output tuples (the semantic signature two variants must
    share to be interchangeable).  ``error`` classifies a failed run —
    a scored variant either has (cycles, outputs) or an error, never
    both.
    """

    cycles: Optional[int]
    outputs: Optional[Tuple[Tuple[Number, ...], ...]]
    error: Optional[str] = None

    @property
    def ok(self) -> bool:
        return self.error is None and self.cycles is not None


def score_module(
    module: DownloadModule,
    input_sets: Sequence[Sequence[Number]],
    array: Optional[WarpArrayModel] = None,
    max_cycles: int = DEFAULT_SCORE_MAX_CYCLES,
) -> ModuleScore:
    """Simulate ``module`` on every input set; sum cycles, keep outputs.

    Any simulation failure (deadlock, trap, cycle-budget exhaustion)
    returns an errored score — the caller treats the variant as
    unusable rather than crashing the search.
    """
    total_cycles = 0
    outputs: List[Tuple[Number, ...]] = []
    for input_set in input_sets:
        try:
            outcome = run_module(
                module, list(input_set), array=array, max_cycles=max_cycles
            )
        except Exception as exc:  # noqa: BLE001 - classified, not hidden
            return ModuleScore(
                cycles=None, outputs=None, error=repr(exc)
            )
        total_cycles += outcome.cycles
        outputs.append(tuple(outcome.outputs))
    return ModuleScore(cycles=total_cycles, outputs=tuple(outputs))


def seeded_input_sets(
    seed: int, width: int = 4, sets: int = 2
) -> List[List[float]]:
    """Deterministic synthetic input streams for scoring.

    Same (seed, width, sets) -> same floats, always; the values are
    rounded so their ``repr`` (and therefore the input-set digest) is
    stable across platforms.
    """
    if width < 0 or sets < 1:
        raise ValueError(
            f"need sets >= 1 and width >= 0, got sets={sets} width={width}"
        )
    rng = random.Random(seed ^ 0x5C0_12E)
    return [
        [round(rng.uniform(-4.0, 4.0), 3) for _ in range(width)]
        for _ in range(sets)
    ]


def input_set_digest(input_sets: Sequence[Sequence[Number]]) -> str:
    """Canonical digest of a list of input sets (variant-score key part)."""
    h = hashlib.sha256()
    h.update(str(len(input_sets)).encode("utf-8"))
    for input_set in input_sets:
        h.update(b"\x1f")
        h.update(str(len(input_set)).encode("utf-8"))
        for value in input_set:
            h.update(b"\x1e")
            h.update(repr(value).encode("utf-8"))
    return h.hexdigest()
