"""Ablation: section-level vs function-level parallelism (§3.1).

The paper's original plan parallelized only across *sections*; the final
design compiles *functions* independently.  This ablation quantifies the
difference the finer grain makes: a single-section S_8 program has no
section-level parallelism at all, and even the three-section user program
is bounded by its slowest section.
"""

from figures_common import write_figure
from repro.cluster.cluster import ClusterSimulation
from repro.metrics.experiments import profile_for, user_program_profile
from repro.metrics.series import Figure
from repro.parallel.schedule import Assignment, one_function_per_processor


def section_level_assignment(profile) -> Assignment:
    """One machine per section, compiling its functions back to back."""
    sections = {}
    for index, fn in enumerate(profile.functions):
        sections.setdefault(fn.section_name, []).append(index)
    return Assignment(per_machine=[idx for idx in sections.values()])


def build_figure() -> Figure:
    sim = ClusterSimulation()
    fig = Figure(
        "Ablation: granularity",
        "Section-level vs function-level parallel compilation",
        "workload",
        "speedup (elapsed)",
        xs=["medium x8 (1 section)", "user program (3 sections)"],
    )
    by_section = fig.new_series("section granularity (original plan)")
    by_function = fig.new_series("function granularity (final design)")
    for label, profile in (
        ("medium x8 (1 section)", profile_for("medium", 8)),
        ("user program (3 sections)", user_program_profile()),
    ):
        seq = sim.run_sequential(profile)
        coarse = sim.run_parallel(profile, section_level_assignment(profile))
        fine = sim.run_parallel(
            profile, one_function_per_processor(profile.functions)
        )
        by_section.add(label, seq.elapsed / coarse.elapsed)
        by_function.add(label, seq.elapsed / fine.elapsed)
    return fig


def test_function_granularity_beats_section_granularity(
    benchmark, results_dir
):
    fig = benchmark(build_figure)
    write_figure(results_dir, fig)

    coarse = fig.series_named("section granularity (original plan)")
    fine = fig.series_named("function granularity (final design)")

    single = "medium x8 (1 section)"
    multi = "user program (3 sections)"

    # A one-section program gets no parallelism at section granularity.
    assert coarse.points[single] <= 1.1
    assert fine.points[single] > 3.0
    # The user program gets some (3 sections) but the fine grain wins.
    assert 1.0 < coarse.points[multi] < fine.points[multi]
