"""Per-function parse+sema cache (the incremental front end's disk tier).

Phase 1's parallel path (:func:`repro.driver.phases.phase1_parallel`)
splits a module into per-function byte windows.  Each window's checked
subtree depends on exactly three things:

- the window's own text (hashed — the *span hash*);
- where the window starts *within its line* (the start column: spans
  store columns absolutely, and a function that moved horizontally
  produces different spans even for identical text);
- the signatures of every function in its section (call-site checking
  reads the callee's name/parameter types/return type and nothing else —
  the same observation that makes the phase-2/3 artifact cache sound).

Everything else — other sections, sibling *bodies*, text above or below
the window — is invisible to the window's parse and per-function check,
so the key deliberately excludes it: editing one function's body leaves
every other function's entry valid.  What a cached subtree does NOT
carry portably is its absolute line/offset spans; a hit at a new
location is span-rebased (:mod:`repro.lang.rebase`) by the window-base
delta, which reproduces a fresh parse bit-for-bit.

Invalidation is therefore: (a) the function's own text changed; (b) the
function moved to a different start column; (c) any sibling signature
changed (parameter/return types, function added/removed/renamed in the
section); (d) the compiler or parse schema version bumped (the salt).
A move that only changes line numbers invalidates nothing — that is the
rebase's job.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..lang import ast_nodes as ast
from ..lang.rebase import rebase_function
from ..lang.sema import FunctionScope
from ..lang.source import Position, Span
from .fingerprint import _Hasher, _feed_signature, compiler_salt
from .store import PickleStore

#: Bump whenever the AST, FunctionScope, or ParseEntry layout changes;
#: old entries become unreachable rather than wrong.
PARSE_SCHEMA_VERSION = 1


def parse_salt() -> str:
    """Version salt for parse-tier keys (compiler salt + parse schema)."""
    return f"{compiler_salt()}+parse{PARSE_SCHEMA_VERSION}"


def signature_table_hash(
    section_name: str,
    first_cell: int,
    last_cell: int,
    stubs: List[ast.Function],
    *,
    salt: Optional[str] = None,
) -> str:
    """Hash of one section's identity and signature table, in source
    order — the cross-function context a window's check depends on."""
    h = _Hasher()
    h.feed(
        salt if salt is not None else parse_salt(),
        section_name,
        first_cell,
        last_cell,
        len(stubs),
    )
    for stub in stubs:
        _feed_signature(h, stub)
    return h.hexdigest()


def window_key(
    slice_text: str,
    start_column: int,
    signatures_hash: str,
    *,
    salt: Optional[str] = None,
) -> str:
    """Cache key for one function window."""
    span_hash = hashlib.sha256(slice_text.encode("utf-8")).hexdigest()
    h = _Hasher()
    h.feed(
        salt if salt is not None else parse_salt(),
        span_hash,
        start_column,
        signatures_hash,
    )
    return h.hexdigest()


@dataclass
class ParseEntry:
    """One function's checked parse: AST + scope + call edges, plus the
    window base it was parsed at (so a hit elsewhere can be rebased)."""

    function: ast.Function
    scope: FunctionScope
    calls: List[Tuple[str, Span]]
    token_count: int
    base: Position
    filename: str


class ParseCache(PickleStore):
    """Disk tier for per-function phase-1 results.

    Lives under ``<cache_dir>/parse/`` beside the artifact cache's
    ``objects/``; same atomicity, corruption handling, and LRU bound.
    Entries are unpickled fresh on every hit, so callers own the
    returned trees outright and rebasing may mutate them in place.
    """

    SUBDIR = "parse"
    PAYLOAD_TYPE = ParseEntry

    def get(
        self,
        key: str,
        *,
        base: Optional[Position] = None,
        filename: Optional[str] = None,
    ) -> Optional[ParseEntry]:
        """The cached entry, span-rebased to ``base``/``filename`` when
        given, or None (miss)."""
        entry = super().get(key)
        if entry is None:
            return None
        if base is not None:
            entry.calls = rebase_function(
                entry.function, entry.calls, entry.base, base, filename
            )
            entry.base = base
            entry.filename = filename
        return entry
