"""Predictive compilation: the learned cost model, the pluggable cost
seam, winning-attempt observation, and watch-mode speculation.

The invariant every test here circles: prediction reorders *scheduling*
(dispatch order, batch packing, deadlines) and warms caches, but can
never change a compile result.  Digests with the model on must be
bit-identical to digests with it off, across every seed we can afford.
"""

import threading
import time

import pytest

from repro.cache import ArtifactCache
from repro.driver.function_master import FunctionTask, run_compile_task
from repro.driver.master import ParallelCompiler
from repro.driver.sequential import SequentialCompiler
from repro.fuzz.generator import config_for_size_class, generate_program
from repro.parallel.backend import stream_task_results
from repro.parallel.local import SerialBackend
from repro.parallel.schedule import provided_task_costs
from repro.parallel.supervisor import SupervisedBackend
from repro.predict import (
    SPECULATION_TENANT,
    CostModel,
    ObservationStore,
    SpeculationManager,
    task_fingerprint,
)
from repro.service import CompileService, FairShareQueue
from repro.workloads.synthetic import synthetic_program

from helpers import wrap_function

SOURCE = wrap_function(
    "\n".join(
        f"function f{i}(x: float) : float begin return x + {float(i)}; end"
        for i in range(4)
    )
)


class RecordingBackend:
    """Serial backend that keeps every task it compiled."""

    worker_count = 1
    effective_worker_count = 1

    def __init__(self):
        self.tasks = []

    def run_tasks(self, tasks):
        return list(self.run_tasks_streaming(tasks))

    def run_tasks_streaming(self, tasks):
        for task in tasks:
            self.tasks.append(task)
            yield from run_compile_task(task)


class GateBackend:
    """Serial backend whose dispatch blocks until the gate opens."""

    worker_count = 1
    effective_worker_count = 1

    def __init__(self):
        self.inner = SerialBackend()
        self.gate = threading.Event()
        #: (section, function) of every task that reached the backend,
        #: in dispatch order — what starvation tests assert on
        self.dispatched = []

    def run_tasks(self, tasks):
        return list(self.run_tasks_streaming(tasks))

    def run_tasks_streaming(self, tasks):
        for task in tasks:
            self.dispatched.append((task.filename, task.function_name))
        self.gate.wait(timeout=30.0)
        yield from stream_task_results(self.inner, tasks)


class SlowOnce:
    """First attempt at ``slow_name`` sleeps; retries compile fast."""

    worker_count = 1
    effective_worker_count = 1

    def __init__(self, slow_name, delay):
        self.slow_name = slow_name
        self.delay = delay
        self.attempts = {}

    def run_tasks(self, tasks):
        return list(self.run_tasks_streaming(tasks))

    def run_tasks_streaming(self, tasks):
        for task in tasks:
            seen = self.attempts.get(task.function_name, 0)
            self.attempts[task.function_name] = seen + 1
            if task.function_name == self.slow_name and seen == 0:
                time.sleep(self.delay)
            yield from run_compile_task(task)


def _wait_for(predicate, timeout=10.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return
        time.sleep(0.01)
    raise AssertionError("condition never became true")


def _recorded_tasks(source=SOURCE):
    """Compile ``source`` once, returning the real FunctionTasks."""
    backend = RecordingBackend()
    ParallelCompiler(backend=backend).compile(source)
    return backend.tasks


# ---------------------------------------------------------------------------
# the cost model


class TestCostModel:
    def test_ewma_folds_and_window_trims(self, tmp_path):
        model = CostModel(
            ObservationStore(str(tmp_path)), alpha=0.5, window=3
        )
        obs = None
        for value in (1.0, 2.0, 3.0, 4.0):
            obs = model.observe("fp", value)
        # EWMA: 1 -> 1.5 -> 2.25 -> 3.125
        assert obs.ewma_s == pytest.approx(3.125)
        assert obs.samples == [2.0, 3.0, 4.0]
        assert obs.count == 4
        assert obs.max_s == 4.0

    def test_estimates_persist_across_instances(self, tmp_path):
        first = CostModel(ObservationStore(str(tmp_path)))
        first.observe("fp", 2.0)
        first.observe("fp", 2.0)
        second = CostModel(ObservationStore(str(tmp_path)))
        assert second.estimate_seconds("fp") == pytest.approx(2.0)

    def test_min_samples_gates_estimates(self, tmp_path):
        model = CostModel(ObservationStore(str(tmp_path)), min_samples=2)
        model.observe("fp", 1.0)
        assert model.estimate_seconds("fp") is None
        model.observe("fp", 1.0)
        assert model.estimate_seconds("fp") == pytest.approx(1.0)
        assert model.estimate_seconds("never-seen") is None

    def test_percentile_is_nearest_rank(self, tmp_path):
        model = CostModel(
            ObservationStore(str(tmp_path)), min_samples=1, window=10
        )
        for value in (1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0, 10.0):
            model.observe("fp", value)
        assert model.percentile_seconds("fp", 0.9) == pytest.approx(9.0)
        assert model.percentile_seconds("fp", 0.5) == pytest.approx(5.0)
        assert model.percentile_seconds("fp", 1.0) == pytest.approx(10.0)

    def test_unfingerprintable_task_falls_back_to_hint(self, tmp_path):
        model = CostModel(ObservationStore(str(tmp_path)))
        bogus = FunctionTask("not a module", "<t>", "s", "f", cost_hint=7.5)
        assert model.cost_for(bogus) == 7.5
        assert model.fallbacks == 1
        # section-level task (function_name None): observation is a no-op
        model.observe_task(
            FunctionTask("", "<t>", "s", None, cost_hint=3.0), 1.0
        )
        assert model.recorded == 0

    def test_learned_cost_is_in_hint_units(self, tmp_path):
        """After calibration, a task observed at 2x another's seconds
        costs ~2x in hint units — regardless of their static hints."""
        tasks = _recorded_tasks()
        assert len(tasks) >= 2
        fast, slow = tasks[0], tasks[1]
        model = CostModel(ObservationStore(str(tmp_path)))
        for _ in range(4):
            model.observe_task(fast, 0.010)
            model.observe_task(slow, 0.020)
        cost_fast = model.cost_for(fast)
        cost_slow = model.cost_for(slow)
        assert model.learned >= 2
        assert cost_slow == pytest.approx(2.0 * cost_fast, rel=0.05)
        # unseen tasks still pay their static hint, same currency
        unseen = tasks[2]
        assert model.cost_for(unseen) == float(unseen.cost_hint)

    def test_same_content_shares_history_across_modules(self, tmp_path):
        """Fingerprints key on content: the same function body in a
        renamed file hits the same observation entry."""
        tasks_a = _recorded_tasks()
        backend = RecordingBackend()
        ParallelCompiler(backend=backend).compile(
            SOURCE, filename="elsewhere.w2"
        )
        tasks_b = backend.tasks
        fp_a = task_fingerprint(tasks_a[0])
        fp_b = task_fingerprint(
            next(
                t for t in tasks_b
                if t.function_name == tasks_a[0].function_name
            )
        )
        assert fp_a is not None and fp_a == fp_b

    def test_invalid_knobs_rejected(self, tmp_path):
        store = ObservationStore(str(tmp_path))
        with pytest.raises(ValueError):
            CostModel(store, alpha=0.0)
        with pytest.raises(ValueError):
            CostModel(store, window=0)
        with pytest.raises(ValueError):
            CostModel(store, min_samples=0)

    def test_snapshot_reports_calibration(self, tmp_path):
        model = CostModel(ObservationStore(str(tmp_path)))
        model.observe("fp", 0.5, hint=10.0)
        model.observe("fp", 0.5, hint=10.0)
        snap = model.snapshot()
        assert snap["recorded"] == 2
        assert snap["hints_per_second"] == pytest.approx(20.0)


# ---------------------------------------------------------------------------
# the pluggable cost-provider seam (satellite: refactor of ast_cost_hint
# consumers)


class TestCostProviderSeam:
    def test_none_provider_is_the_static_hint(self):
        tasks = _recorded_tasks()
        assert provided_task_costs(tasks, None) == [
            float(t.cost_hint) for t in tasks
        ]

    def test_provider_values_used_and_errors_fall_back(self):
        tasks = _recorded_tasks()

        def flaky(task):
            if task.function_name == tasks[0].function_name:
                raise RuntimeError("no estimate")
            return 42.0

        costs = provided_task_costs(tasks, flaky)
        assert costs[0] == float(tasks[0].cost_hint)
        assert all(c == 42.0 for c in costs[1:])

    def test_queue_task_cost_provider_and_floor(self):
        task = FunctionTask("", "<t>", "s", "f", cost_hint=5.0)
        assert FairShareQueue().task_cost(task) == 5.0
        provided = FairShareQueue(cost_provider=lambda t: 9.0)
        assert provided.task_cost(task) == 9.0
        floored = FairShareQueue(cost_provider=lambda t: 0.0)
        assert floored.task_cost(task) == 1.0  # min_cost floor
        broken = FairShareQueue(
            cost_provider=lambda t: (_ for _ in ()).throw(ValueError())
        )
        assert broken.task_cost(task) == 5.0

    def test_supervisor_timeout_uses_provider(self):
        task = FunctionTask("", "<t>", "s", "f", cost_hint=100.0)
        plain = SupervisedBackend(
            SerialBackend(), timeout_floor=1.0, timeout_multiplier=0.01
        )
        assert plain.timeout_for(task) == pytest.approx(1.0)
        informed = SupervisedBackend(
            SerialBackend(),
            timeout_floor=1.0,
            timeout_multiplier=0.01,
            cost_provider=lambda t: 1000.0,
        )
        assert informed.timeout_for(task) == pytest.approx(10.0)

    def test_backend_digests_unchanged_by_provider(self):
        """Costs reorder batches; results must be bit-identical."""
        from repro.parallel.local import ProcessPoolBackend

        expected = SequentialCompiler().compile(SOURCE).digest
        backend = ProcessPoolBackend(max_workers=2)
        # reverse the relative order the packer sees
        backend.cost_provider = lambda task: 1.0 / max(task.cost_hint, 1.0)
        result = ParallelCompiler(backend=backend).compile(SOURCE)
        assert result.digest == expected


# ---------------------------------------------------------------------------
# winning-attempt observation (satellite: hedged/retried attempts must
# record the attempt that actually delivered)


class TestWinningAttemptObservation:
    def test_exactly_one_observation_per_task(self):
        observed = []
        backend = SupervisedBackend(
            SerialBackend(),
            cost_observer=lambda task, s: observed.append(
                (task.function_name, s)
            ),
        )
        ParallelCompiler(backend=backend).compile(SOURCE)
        names = [name for name, _ in observed]
        assert sorted(names) == [f"f{i}" for i in range(4)]
        assert all(seconds >= 0.0 for _, seconds in observed)

    def test_retry_observes_the_winning_attempt_only(self):
        """f3's first attempt hangs past its deadline; the retry wins.
        The observation must be the retry's wall clock, not the sum."""
        observed = {}
        inner = SlowOnce("f3", delay=1.2)
        backend = SupervisedBackend(
            inner,
            task_timeout=0.2,
            hedge_after=None,
            max_attempts=3,
            cost_observer=lambda task, s: observed.setdefault(
                task.function_name, []
            ).append(s),
        )
        par = ParallelCompiler(backend=backend).compile(SOURCE)
        assert par.digest == SequentialCompiler().compile(SOURCE).digest
        assert inner.attempts["f3"] == 2
        assert len(observed["f3"]) == 1
        # the winning retry compiled instantly; observing the launch-to-
        # delivery of the *first* attempt would read >= 1.2s
        assert observed["f3"][0] < 1.0

    def test_observer_errors_do_not_fail_the_compile(self):
        def explode(task, seconds):
            raise RuntimeError("observer bug")

        backend = SupervisedBackend(SerialBackend(), cost_observer=explode)
        par = ParallelCompiler(backend=backend).compile(SOURCE)
        assert par.digest == SequentialCompiler().compile(SOURCE).digest

    def test_service_records_observations_end_to_end(self, tmp_path):
        model = CostModel(ObservationStore(str(tmp_path / "obs")))
        with CompileService(SerialBackend(), cost_model=model) as service:
            job = service.wait(
                service.submit(synthetic_program("tiny", 3)), timeout=60.0
            )
        assert job.state == "done"
        assert model.recorded == 3
        assert service.service_stats()["cost_model"]["recorded"] == 3


# ---------------------------------------------------------------------------
# watch-mode speculation


def _watch_service(tmp_path, **kwargs):
    cache = ArtifactCache(str(tmp_path / "cache"))
    model = CostModel(ObservationStore(str(tmp_path / "obs")))
    defaults = dict(cost_model=model, speculation=True)
    defaults.update(kwargs)
    return CompileService(SerialBackend(), cache, **defaults)


class TestWatchSpeculation:
    def test_update_speculates_then_submit_hits_cache(self, tmp_path):
        source = synthetic_program("tiny", 3, module_name="w_warm")
        with _watch_service(tmp_path) as service:
            outcome = service.watch_update(source, watch="w")
            assert outcome["reason"] == "speculating"
            assert outcome["dirty"] == 3
            spec = service.wait(outcome["job"], timeout=60.0)
            assert spec.state == "done"
            assert spec.tenant == SPECULATION_TENANT
            job = service.wait(
                service.submit(source, priority="interactive"),
                timeout=60.0,
            )
            assert job.state == "done"
            assert job.cache_served == 3
            assert job.result.digest == spec.result.digest

    def test_clean_update_does_nothing(self, tmp_path):
        source = synthetic_program("tiny", 2, module_name="w_clean")
        with _watch_service(tmp_path) as service:
            first = service.watch_update(source, watch="w")
            service.wait(first["job"], timeout=60.0)
            second = service.watch_update(source, watch="w")
            assert second["reason"] == "clean"
            assert second["job"] is None
            assert service.speculation.stats()["clean"] == 1

    def test_only_changed_functions_are_dirty(self, tmp_path):
        base = synthetic_program("tiny", 3, module_name="w_dirty")
        edited = base.replace("return", "x := x + 0.125;\n    return", 1)
        assert edited != base
        with _watch_service(tmp_path) as service:
            service.wait(
                service.watch_update(base, watch="w")["job"], timeout=60.0
            )
            outcome = service.watch_update(edited, watch="w")
            assert outcome["reason"] == "speculating"
            assert outcome["dirty"] == 1
            assert outcome["functions"] == ["sec1.f1"]

    def test_parse_error_keeps_previous_snapshot(self, tmp_path):
        source = synthetic_program("tiny", 2, module_name="w_broken")
        with _watch_service(tmp_path) as service:
            service.wait(
                service.watch_update(source, watch="w")["job"], timeout=60.0
            )
            broken = service.watch_update(
                source[: len(source) // 2], watch="w"
            )
            assert broken["reason"] == "parse-error"
            assert broken["job"] is None
            # the good snapshot survived: re-sending it is clean
            again = service.watch_update(source, watch="w")
            assert again["reason"] == "clean"

    def test_newer_edit_supersedes_inflight_job(self, tmp_path):
        backend = GateBackend()
        cache = ArtifactCache(str(tmp_path / "cache"))
        service = CompileService(backend, cache, speculation=True)
        try:
            v1 = synthetic_program("tiny", 2, module_name="w_super")
            v2 = v1.replace("return", "x := x + 0.5;\n    return", 1)
            first = service.watch_update(v1, watch="w")
            assert first["reason"] == "speculating"
            second = service.watch_update(v2, watch="w")
            assert second["superseded"] is True
            assert service.speculation.stats()["superseded"] == 1
            assert service.job(first["job"]).cancel_requested
        finally:
            backend.gate.set()
            service.close()

    def test_inflight_cap_suppresses(self, tmp_path):
        backend = GateBackend()
        service = CompileService(
            backend, speculation=True, speculation_inflight=1
        )
        try:
            a = service.watch_update(
                synthetic_program("tiny", 2, module_name="w_cap_a"),
                watch="a",
            )
            assert a["reason"] == "speculating"
            b = service.watch_update(
                synthetic_program("tiny", 2, module_name="w_cap_b"),
                watch="b",
            )
            assert b["reason"] == "inflight-cap"
            assert service.speculation.stats()["suppressed"] == 1
        finally:
            backend.gate.set()
            service.close()

    def test_queue_headroom_protects_admission(self, tmp_path):
        backend = GateBackend()
        service = CompileService(
            backend,
            max_queued=2,
            max_running=1,
            speculation=True,
            speculation_headroom=2,
        )
        try:
            running = service.submit(
                synthetic_program("tiny", 1, module_name="w_hr_run"),
                tenant="alice",
            )
            _wait_for(lambda: service.job(running).state == "running")
            service.submit(
                synthetic_program("tiny", 1, module_name="w_hr_q"),
                tenant="alice",
            )
            outcome = service.watch_update(
                synthetic_program("tiny", 1, module_name="w_hr_spec")
            )
            assert outcome["reason"] == "queue-headroom"
            # the headroom the manager refused to consume is still there
            service.submit(
                synthetic_program("tiny", 1, module_name="w_hr_real"),
                tenant="bob",
            )
        finally:
            backend.gate.set()
            service.close()

    def test_speculation_disabled_reports_reason(self):
        with CompileService(SerialBackend()) as service:
            outcome = service.watch_update(
                synthetic_program("tiny", 1, module_name="w_off")
            )
        assert outcome["speculation"] is False
        assert outcome["reason"] == "speculation-disabled"
        assert service.speculation is None

    def test_speculation_never_starves_real_tenants(self):
        """With the gate closed, a speculative job and a real job both
        queue their tasks; batch priority means every real task must
        dispatch before any speculative one once the gate opens."""
        backend = GateBackend()
        service = CompileService(
            backend, max_running=4, wave_size=1, speculation=True
        )
        try:
            real = service.submit(
                synthetic_program("tiny", 3, module_name="w_starve_real"),
                tenant="alice",
                priority="normal",
                filename="<real>",
            )
            # first real wave is at the (closed) gate; the dispatcher is
            # parked, so everything below piles up behind it in the queue
            _wait_for(lambda: len(backend.dispatched) >= 1)
            spec = service.watch_update(
                synthetic_program("tiny", 3, module_name="w_starve_spec"),
                filename="<speculative>",
            )
            assert spec["reason"] == "speculating"
            backend.gate.set()
            assert service.wait(real, timeout=60.0).state == "done"
            service.wait(spec["job"], timeout=60.0)
            order = [filename for filename, _ in backend.dispatched]
            assert "<real>" in order and "<speculative>" in order
            last_real = max(
                i for i, f in enumerate(order) if f == "<real>"
            )
            first_spec = min(
                i for i, f in enumerate(order) if f == "<speculative>"
            )
            assert last_real < first_spec, order
        finally:
            backend.gate.set()
            service.close()

    def test_watch_and_submit_digests_identical(self, tmp_path):
        """The acceptance invariant, single-seed edition."""
        source = synthetic_program("small", 3, module_name="w_ident")
        with _watch_service(tmp_path) as spec_service:
            outcome = spec_service.watch_update(source)
            spec_service.wait(outcome["job"], timeout=60.0)
            warm = spec_service.wait(
                spec_service.submit(source), timeout=60.0
            )
        with CompileService(SerialBackend()) as cold_service:
            cold = cold_service.wait(
                cold_service.submit(source), timeout=60.0
            )
        assert warm.state == "done" and cold.state == "done"
        assert warm.result.digest == cold.result.digest


# ---------------------------------------------------------------------------
# the determinism sweep (satellite: 200 seeds, speculation on/off)


class TestDeterminismSweep:
    def test_200_seed_speculation_on_off_digests_identical(self, tmp_path):
        """Compile 200 generated programs through (a) a bare service and
        (b) a predict+speculation service that watch-speculated first.
        Every digest pair must match bit-for-bit."""
        config = config_for_size_class("tiny")
        programs = [generate_program(seed, config) for seed in range(200)]
        mismatches = []
        with CompileService(SerialBackend(), max_queued=256) as bare:
            with _watch_service(tmp_path, max_queued=256) as speculative:
                for program in programs:
                    outcome = speculative.watch_update(
                        program.source, watch=f"seed{program.seed}"
                    )
                    if outcome["job"] is not None:
                        speculative.wait(outcome["job"], timeout=120.0)
                    on = speculative.wait(
                        speculative.submit(program.source),
                        timeout=120.0,
                    )
                    off = bare.wait(
                        bare.submit(program.source), timeout=120.0
                    )
                    if (
                        on.state != "done"
                        or off.state != "done"
                        or on.result.digest != off.result.digest
                    ):
                        mismatches.append(program.seed)
        assert mismatches == [], (
            f"speculation changed digests for seeds {mismatches[:10]}"
        )
