"""Weighted fair-share job queue for the compile service.

The scheduling unit is the *function task*, not the job: when several
modules are being compiled at once, their per-function tasks are
interleaved onto the shared pool so one huge module cannot monopolize
the farm — the paper's §4.3 observation that small functions should
share processors, replayed across whole jobs.  The interleaving is
driven by the same cost estimate the paper's scheduler uses ("lines of
code and loop nesting", §4.3): every task carries its
:func:`~repro.parallel.schedule.ast_cost_hint`, and dispatching a task
advances its tenant's *virtual time* by ``cost / weight`` (stride
scheduling).  The estimate itself is a pluggable seam: construct the
queue with a ``cost_provider`` (e.g. the learned
:class:`~repro.predict.observe.CostModel`) to account tasks at observed
compile times instead of the static hint — only the dispatch *order*
changes, never any result.  The next task always comes from the tenant with the least
virtual time, so:

- tenants receive pool share proportional to their weights;
- a tenant burning huge tasks accumulates virtual time quickly and
  yields the next slots to tenants with small tasks — a tiny job lands
  in the very next wave, bounded by one wave's latency, never by the
  huge job's total runtime;
- within one tenant, the same accounting runs per *job*, so a tenant's
  own tiny job overtakes its huge one too.

Priority classes are strict: while any ``interactive`` task is pending,
no ``normal`` or ``batch`` task is dispatched (and so on down).  Within
a class, fair share applies.  All tie-breaks use arrival sequence
numbers, so the dispatch order is a pure function of the enqueue
history — seeded tests replay it exactly.
"""

from __future__ import annotations

import threading
from collections import OrderedDict, deque
from dataclasses import dataclass
from typing import Deque, Dict, List, Optional, Sequence, Tuple

from ..driver.function_master import FunctionTask, phase1_cached

#: Strict-priority classes, most urgent first.
PRIORITY_CLASSES: Tuple[str, ...] = ("interactive", "normal", "batch")

#: (section, function) pairs a task's results will carry — the routing
#: key between the shared dispatcher and the job that owns the task.
ResultKey = Tuple[str, str]


def priority_index(priority: str) -> int:
    """Validate and rank a priority-class name."""
    try:
        return PRIORITY_CLASSES.index(priority)
    except ValueError:
        raise ValueError(
            f"unknown priority {priority!r}; "
            f"choose from {list(PRIORITY_CLASSES)}"
        ) from None


def result_keys_for_task(task: FunctionTask) -> Tuple[ResultKey, ...]:
    """The (section, function) result keys ``task`` will produce.

    A function-level task yields exactly one result; a section-level
    task (``function_name is None``) yields one per function of the
    section.  The parse comes from the process-wide phase-1 cache — the
    job's master parsed the same source moments ago, so this is a hit.
    """
    if task.function_name is not None:
        return ((task.section_name, task.function_name),)
    parsed, _ = phase1_cached(task.source_text, task.filename)
    section = parsed.module.section_named(task.section_name)
    if section is None:  # pragma: no cover - master validated earlier
        raise KeyError(f"no section named {task.section_name!r}")
    return tuple((task.section_name, fn.name) for fn in section.functions)


@dataclass(frozen=True)
class QueuedTask:
    """One function task waiting for a pool slot."""

    job_id: str
    tenant: str
    priority: int  # index into PRIORITY_CLASSES
    task: FunctionTask
    cost: float
    seq: int  # global arrival order (tie-break and determinism anchor)
    result_keys: Tuple[ResultKey, ...]


class _JobQueue:
    """Per-job FIFO plus the job-level fair-share account."""

    __slots__ = ("tenant", "priority", "seq", "vtime", "tasks")

    def __init__(self, tenant: str, priority: int, seq: int, vtime: float):
        self.tenant = tenant
        self.priority = priority
        self.seq = seq
        self.vtime = vtime
        self.tasks: Deque[QueuedTask] = deque()


class FairShareQueue:
    """Two-level (tenant, then job) weighted stride scheduler.

    Thread-safe; every method takes the internal lock.  Dispatch order
    is deterministic given the enqueue history: selection ties break on
    names and arrival sequence numbers, never on wall clock or hashing.
    """

    def __init__(
        self,
        tenant_weights: Optional[Dict[str, float]] = None,
        default_weight: float = 1.0,
        min_cost: float = 1.0,
        cost_provider=None,
    ):
        if default_weight <= 0:
            raise ValueError(
                f"default weight must be positive, got {default_weight}"
            )
        if min_cost <= 0:
            raise ValueError(f"min cost must be positive, got {min_cost}")
        self._lock = threading.Lock()
        self._weights: Dict[str, float] = {}
        for tenant, weight in (tenant_weights or {}).items():
            self._check_weight(weight)
            self._weights[tenant] = weight
        self._default_weight = default_weight
        self._min_cost = min_cost
        #: pluggable cost seam: Callable[[FunctionTask], float] or None
        #: for the static §4.3 hint.  A provider only changes dispatch
        #: *order* — results route by (section, function), so digests
        #: are identical under any provider.
        self._cost_provider = cost_provider
        #: insertion-ordered so iteration (and thus selection scans) are
        #: reproducible regardless of string hash randomization.
        self._jobs: "OrderedDict[str, _JobQueue]" = OrderedDict()
        self._tenant_vtime: Dict[str, float] = {}
        #: virtual time of the most recent dispatch — the floor newly
        #: activating tenants/jobs start from, so an idle tenant neither
        #: banks credit nor gets punished for having been idle.
        self._vfloor = 0.0
        self._seq = 0
        #: total tasks dispatched (telemetry)
        self.dispatched = 0

    @staticmethod
    def _check_weight(weight: float) -> None:
        if weight <= 0:
            raise ValueError(f"tenant weight must be positive, got {weight}")

    def set_weight(self, tenant: str, weight: float) -> None:
        self._check_weight(weight)
        with self._lock:
            self._weights[tenant] = weight

    def weight_of(self, tenant: str) -> float:
        with self._lock:
            return self._weights.get(tenant, self._default_weight)

    def task_cost(self, task: FunctionTask) -> float:
        """The cost a task is accounted at: the provider's estimate when
        one is set (falling back to the static hint on any error),
        floored at ``min_cost``."""
        if self._cost_provider is not None:
            try:
                return max(float(self._cost_provider(task)), self._min_cost)
            except Exception:
                pass
        return max(float(task.cost_hint), self._min_cost)

    # -- enqueue -------------------------------------------------------

    def enqueue(
        self,
        job_id: str,
        tenant: str,
        priority: int,
        tasks: Sequence[Tuple[FunctionTask, Tuple[ResultKey, ...]]],
    ) -> int:
        """Add a job's tasks (in compile order); returns tasks queued."""
        if not 0 <= priority < len(PRIORITY_CLASSES):
            raise ValueError(f"priority index out of range: {priority}")
        with self._lock:
            job = self._jobs.get(job_id)
            if job is None:
                # Activation: start from the dispatch floor, keeping any
                # higher personal vtime (re-activation cannot reset debt).
                tenant_vtime = max(
                    self._tenant_vtime.get(tenant, 0.0), self._vfloor
                )
                self._tenant_vtime[tenant] = tenant_vtime
                job = _JobQueue(tenant, priority, self._seq, tenant_vtime)
                self._jobs[job_id] = job
            elif job.tenant != tenant:
                raise ValueError(
                    f"job {job_id!r} already enqueued for tenant "
                    f"{job.tenant!r}, not {tenant!r}"
                )
            count = 0
            for task, keys in tasks:
                job.tasks.append(
                    QueuedTask(
                        job_id=job_id,
                        tenant=tenant,
                        priority=priority,
                        task=task,
                        cost=self.task_cost(task),
                        seq=self._seq,
                        result_keys=tuple(keys),
                    )
                )
                self._seq += 1
                count += 1
            if not job.tasks:
                del self._jobs[job_id]
            return count

    # -- dispatch ------------------------------------------------------

    def next_wave(self, max_tasks: int) -> List[QueuedTask]:
        """Select up to ``max_tasks`` tasks for one dispatch wave.

        Selection repeats: take the best-priority class with pending
        tasks, the least-virtual-time tenant in it, that tenant's
        least-virtual-time job, and the job's next task in compile
        order.  Result keys are unique within the wave — a task whose
        key collides with one already selected stays queued (its whole
        job is deferred to the next wave, preserving per-job task
        order), because the shared pool routes results back to jobs by
        (section, function) and the supervisor dedupes by the same key.
        """
        if max_tasks < 1:
            raise ValueError(f"need at least one task, got {max_tasks}")
        with self._lock:
            wave: List[QueuedTask] = []
            used_keys: set = set()
            blocked: set = set()
            while len(wave) < max_tasks:
                choice = self._select(blocked)
                if choice is None:
                    break
                job_id, job = choice
                head = job.tasks[0]
                if any(key in used_keys for key in head.result_keys):
                    blocked.add(job_id)
                    continue
                job.tasks.popleft()
                wave.append(head)
                used_keys.update(head.result_keys)
                weight = self._weights.get(
                    job.tenant, self._default_weight
                )
                self._vfloor = self._tenant_vtime[job.tenant]
                self._tenant_vtime[job.tenant] += head.cost / weight
                job.vtime += head.cost
                self.dispatched += 1
                if not job.tasks:
                    del self._jobs[job_id]
            return wave

    def _select(self, blocked: set) -> Optional[Tuple[str, _JobQueue]]:
        """The (job_id, job) the scheduler picks next, or None."""
        best_priority = None
        for job_id, job in self._jobs.items():
            if job_id in blocked or not job.tasks:
                continue
            if best_priority is None or job.priority < best_priority:
                best_priority = job.priority
        if best_priority is None:
            return None
        chosen: Optional[Tuple[str, _JobQueue]] = None
        chosen_rank = None
        for job_id, job in self._jobs.items():
            if (
                job_id in blocked
                or not job.tasks
                or job.priority != best_priority
            ):
                continue
            rank = (
                self._tenant_vtime[job.tenant],
                job.tenant,
                job.vtime,
                job.seq,
            )
            if chosen_rank is None or rank < chosen_rank:
                chosen, chosen_rank = (job_id, job), rank
        return chosen

    # -- maintenance ---------------------------------------------------

    def discard_job(self, job_id: str) -> int:
        """Drop a job's remaining tasks (cancellation); returns count."""
        with self._lock:
            job = self._jobs.pop(job_id, None)
            if job is None:
                return 0
            return len(job.tasks)

    def has_pending(self) -> bool:
        with self._lock:
            return bool(self._jobs)

    def pending_tasks(self) -> int:
        with self._lock:
            return sum(len(job.tasks) for job in self._jobs.values())

    def pending_for(self, job_id: str) -> int:
        with self._lock:
            job = self._jobs.get(job_id)
            return len(job.tasks) if job is not None else 0
