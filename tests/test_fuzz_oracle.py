"""The differential oracle and the catch → minimize → corpus workflow."""

import json

import pytest

from repro.cache import ArtifactCache, compiler_salt, module_fingerprints
from repro.fuzz import config_for_size_class, generate_program
from repro.fuzz.oracle import (
    ALL_PIPELINES,
    DEFAULT_PIPELINES,
    DifferentialOracle,
    OracleConfig,
    narrowed_config,
    run_fuzz_campaign,
)
from repro.fuzz.reduce import DeltaReducer, load_corpus_entry, write_corpus_entry

from helpers import parse_ok, wrap_function

CLEAN = wrap_function(
    "function f(x: float) : float begin return x * 2.0; end\n"
    "function g(x: float) : float begin return f(x) + 1.0; end"
)


class TestOracleAgreement:
    def test_clean_module_passes_every_default_pipeline(self):
        with DifferentialOracle() as oracle:
            report = oracle.check(CLEAN, inputs=[1.5], seed=0)
        assert report.ok, report.describe()
        names = {o.pipeline for o in report.outcomes}
        assert set(DEFAULT_PIPELINES) <= names

    def test_generated_programs_pass(self):
        config = OracleConfig(
            pipelines=("sequential", "parallel", "cache", "chaos")
        )
        with DifferentialOracle(config) as oracle:
            for seed in range(5):
                program = generate_program(
                    seed, config_for_size_class("tiny")
                )
                report = oracle.check(
                    program.source, inputs=program.inputs(), seed=seed
                )
                assert report.ok, (seed, report.describe())

    def test_semantic_leg_runs_reference_interpreter(self):
        source = wrap_function(
            "function main()\n"
            "var x: float;\n"
            "begin receive(x); send(x * 2.0); end"
        )
        with DifferentialOracle(
            OracleConfig(pipelines=("sequential",))
        ) as oracle:
            report = oracle.check(source, inputs=[1.5], seed=0)
        assert report.semantic_checked
        assert report.reference_outputs == report.executed_outputs == [3.0]

    def test_unknown_pipeline_rejected(self):
        with pytest.raises(ValueError):
            DifferentialOracle(OracleConfig(pipelines=("warp-speed",)))

    def test_fabric_leg_matches_sequential(self):
        """The fabric pipeline compiles through a loopback hub with two
        node agents and must agree digest-for-digest with sequential."""
        config = OracleConfig(pipelines=("sequential", "fabric"))
        with DifferentialOracle(config) as oracle:
            for seed in range(3):
                program = generate_program(
                    seed, config_for_size_class("tiny")
                )
                report = oracle.check(
                    program.source, inputs=program.inputs(), seed=seed
                )
                assert report.ok, (seed, report.describe())
                digests = {
                    o.pipeline: o.digest
                    for o in report.outcomes
                    if o.pipeline in ("sequential", "fabric")
                }
                assert digests["fabric"] == digests["sequential"]

    def test_rejected_module_is_not_a_mismatch(self):
        bad = wrap_function(
            "function f(x: float) : float begin return y; end"
        )
        with DifferentialOracle(
            OracleConfig(pipelines=("sequential", "parallel"))
        ) as oracle:
            report = oracle.check(bad, inputs=[], seed=0)
        # Every pipeline rejects it the same way: agreement, not a bug.
        assert report.ok, report.describe()


class TestSaltIsolation:
    def test_cache_pipeline_asserts_cross_version_misses(self, tmp_path):
        """The oracle's cache leg re-fingerprints under a bumped salt
        and demands misses; seed a poisoned cross-version entry and the
        leg must flag it as a digest-class mismatch."""
        module, _ = parse_ok(CLEAN)
        bumped = module_fingerprints(
            module,
            opt_level=2,
            cell_count=10,
            granularity="function",
            salt=compiler_salt() + "+next-version",
        )
        from repro.driver.master import ParallelCompiler
        from repro.parallel.local import SerialBackend

        cache = ArtifactCache(tmp_path)
        with DifferentialOracle(
            OracleConfig(pipelines=("sequential", "cache"))
        ) as oracle:
            # Sanity: the normal leg passes.
            assert oracle.check(CLEAN, inputs=[], seed=0).ok
            # Populate real artifacts under the *current* salt…
            ParallelCompiler(
                backend=SerialBackend(),
                array=oracle._array(),
                cache=cache,
            ).compile(CLEAN)
            current = module_fingerprints(
                module,
                opt_level=2,
                cell_count=oracle._array().cell_count,
                granularity="function",
                salt=compiler_salt(),
            )
            # …then republish them under next-version keys: exactly the
            # cross-version leak the assertion exists to catch.
            for key, fingerprint in bumped.items():
                artifact = cache.get(current[key])
                assert artifact is not None
                cache.put(fingerprint, artifact)
            with pytest.raises(AssertionError):
                oracle._assert_salt_isolation(
                    CLEAN, cache, oracle._array(), 2
                )

    def test_current_salt_differs_from_bumped(self):
        module, _ = parse_ok(CLEAN)
        current = module_fingerprints(
            module, opt_level=2, cell_count=10, salt=compiler_salt()
        )
        bumped = module_fingerprints(
            module,
            opt_level=2,
            cell_count=10,
            salt=compiler_salt() + "+next-version",
        )
        assert set(current.values()).isdisjoint(bumped.values())


class TestMiscompileWorkflow:
    """Acceptance: an injected miscompile is caught, minimized to at
    most 3 functions, and lands as a loadable corpus entry."""

    def test_catch_minimize_corpus_round_trip(self, tmp_path):
        program = generate_program(4, config_for_size_class("small"))
        target = [n for n in program.function_names if n != "main"][0]
        config = OracleConfig(
            pipelines=("sequential", "parallel", "section"),
            inject_miscompile=f"parallel:{target}",
        )
        with DifferentialOracle(config) as oracle:
            campaign = run_fuzz_campaign(
                seed=4, iterations=3, size_class="small", oracle=oracle
            )
        assert not campaign.ok
        failure = campaign.failures[0]
        assert failure.report.kinds() == ["digest"]

        narrow = narrowed_config(config, failure.report)
        assert set(narrow.pipelines) == {"sequential", "parallel"}
        with DifferentialOracle(narrow) as oracle:
            reducer = DeltaReducer(
                oracle, inputs=failure.program.inputs(), seed=failure.seed
            )
            reduction = reducer.reduce(failure.program.source)
        assert reduction.function_count <= 3
        assert reduction.reduced
        assert reduction.kinds == ["digest"]

        path = write_corpus_entry(
            tmp_path,
            source=reduction.source,
            seed=failure.seed,
            size_class="small",
            kinds=reduction.kinds,
            pipelines=["sequential", "parallel"],
            inputs=failure.program.inputs(),
            notes="end-to-end workflow test",
        )
        entry = load_corpus_entry(path)
        assert entry["source"] == reduction.source
        assert entry["seed"] == failure.seed
        # Without the hook the minimized module must replay clean.
        with DifferentialOracle(
            OracleConfig(pipelines=tuple(entry["pipelines"]))
        ) as oracle:
            assert oracle.check(
                entry["source"], inputs=entry["inputs"], seed=entry["seed"]
            ).ok

    def test_reducer_refuses_passing_module(self):
        with DifferentialOracle(
            OracleConfig(pipelines=("sequential", "parallel"))
        ) as oracle:
            with pytest.raises(ValueError):
                DeltaReducer(oracle).reduce(CLEAN)


class TestCampaign:
    def test_campaign_is_deterministic(self):
        config = OracleConfig(pipelines=("sequential", "parallel"))
        with DifferentialOracle(config) as oracle:
            a = run_fuzz_campaign(
                seed=7, iterations=4, size_class="tiny", oracle=oracle
            )
            b = run_fuzz_campaign(
                seed=7, iterations=4, size_class="tiny", oracle=oracle
            )
        assert a.iterations_run == b.iterations_run == 4
        assert a.ok and b.ok

    def test_time_budget_stops_early(self):
        config = OracleConfig(pipelines=("sequential",))
        with DifferentialOracle(config) as oracle:
            result = run_fuzz_campaign(
                seed=0,
                iterations=10_000,
                size_class="tiny",
                oracle=oracle,
                time_budget=0.5,
            )
        assert 0 < result.iterations_run < 10_000

    def test_all_pipelines_constant_covers_matrix(self):
        # warm-pool forks processes and fabric opens loopback sockets;
        # search compiles the module once per variant config; predict
        # spins up a compile service with watch speculation; all four
        # stay opt-in so the default matrix is cheap and sandboxed.
        assert set(DEFAULT_PIPELINES) == set(ALL_PIPELINES) - {
            "warm-pool",
            "fabric",
            "search",
            "predict",
        }


def test_cli_fuzz_smoke(capsys):
    from repro.cli import main

    code = main(
        [
            "fuzz",
            "--seed", "1",
            "--iterations", "3",
            "--size-class", "tiny",
            "--pipelines", "sequential,parallel,supervised",
        ]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "0 mismatch(es)" in out


def test_cli_fuzz_minimize_writes_corpus(tmp_path, capsys):
    from repro.cli import main

    program = generate_program(4, config_for_size_class("tiny"))
    target = [n for n in program.function_names if n != "main"][0]
    code = main(
        [
            "fuzz",
            "--seed", "4",
            "--iterations", "2",
            "--size-class", "tiny",
            "--pipelines", "sequential,parallel",
            "--minimize",
            "--corpus-dir", str(tmp_path),
            "--inject-miscompile", f"parallel:{target}",
        ]
    )
    assert code == 1  # mismatch found and reported
    written = list(tmp_path.glob("fuzz_*.json"))
    assert len(written) == 1
    entry = json.loads(written[0].read_text())
    assert entry["kinds"] == ["digest"]
