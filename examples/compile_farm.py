"""Reproduce the paper's core experiment at your desk.

Generates the synthetic S_n programs (§4.1), compiles them for real to
obtain deterministic work profiles, then replays both compilers on the
simulated 1988 workstation network and prints the speedup and the §4.2.3
overhead decomposition.

Run:  python examples/compile_farm.py
"""

from repro.cluster.cluster import ClusterSimulation
from repro.driver.sequential import SequentialCompiler
from repro.metrics.overhead import compute_overhead
from repro.parallel.schedule import one_function_per_processor
from repro.workloads.synthetic import synthetic_program


def measure(size_class: str, n_functions: int, sim: ClusterSimulation):
    source = synthetic_program(size_class, n_functions)
    profile = SequentialCompiler().compile(source).profile
    sequential = sim.run_sequential(profile)
    parallel = sim.run_parallel(
        profile, one_function_per_processor(profile.functions)
    )
    overhead = compute_overhead(sequential, parallel, n_functions)
    return sequential, parallel, overhead


def main() -> None:
    sim = ClusterSimulation()
    print(
        f"{'size':8s} {'n':>2s} {'seq elapsed':>12s} {'par elapsed':>12s} "
        f"{'speedup':>8s} {'total ovh%':>10s} {'system ovh%':>11s}"
    )
    for size_class in ("tiny", "small", "medium", "large"):
        for n in (1, 4, 8):
            seq, par, ovh = measure(size_class, n, sim)
            print(
                f"{size_class:8s} {n:2d} {seq.elapsed:12.1f} "
                f"{par.elapsed:12.1f} {seq.elapsed / par.elapsed:8.2f} "
                f"{ovh.relative_total:10.1f} {ovh.relative_system:11.1f}"
            )
    print()
    print("Reading the table (paper §4/§5):")
    print(" - tiny functions: parallel compilation is pure overhead;")
    print(" - the speedup grows with both function size and count;")
    print(" - large functions reach the paper's 3-6x headline band;")
    print(" - relative overhead rises with the number of parallel tasks.")


if __name__ == "__main__":
    main()
