"""Variant spaces: the config lattice the search explores.

A :class:`VariantConfig` is one point in the compiler's optimization
lattice — opt level × full-unroll budget × modulo-scheduling II budget,
exactly the knobs :func:`repro.codegen.compiler.compile_function`
exposes.  A :class:`VariantSpace` is an *ordered* tuple of configs; the
order matters twice:

- the **reference config** (index 0) defines the baseline the search
  measures against and the semantic signature every variant must match;
- ties on simulated cycles break toward the *earlier* config, so the
  winner — and therefore the output module digest — is a pure function
  of (source, space, inputs), never of timing or backend.

Configs serialize to compact keys (``o2u64i1``) used in cache keys,
reports, ``--space`` command lines, and JSON output.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Iterable, List, Sequence, Tuple

#: The standard pipeline: what ``warpcc compile`` produces today.
REFERENCE_KEY = "o2u0i0"

_KEY_RE = re.compile(r"^o(\d+)u(\d+)i(\d+)$")


@dataclass(frozen=True, order=True)
class VariantConfig:
    """One compiler configuration the search may try."""

    opt_level: int = 2
    unroll_budget: int = 0
    ii_budget: int = 0

    def __post_init__(self):
        if self.opt_level not in (0, 1, 2):
            raise ValueError(f"opt_level must be 0..2, got {self.opt_level}")
        if self.unroll_budget < 0 or self.ii_budget < 0:
            raise ValueError(
                f"budgets must be >= 0, got unroll={self.unroll_budget} "
                f"ii={self.ii_budget}"
            )

    def key(self) -> str:
        return f"o{self.opt_level}u{self.unroll_budget}i{self.ii_budget}"

    @property
    def is_reference(self) -> bool:
        return self.key() == REFERENCE_KEY

    @classmethod
    def from_key(cls, key: str) -> "VariantConfig":
        match = _KEY_RE.match(key.strip())
        if not match:
            raise ValueError(
                f"bad variant key {key!r} (want oNuNiN, e.g. 'o2u64i0')"
            )
        return cls(
            opt_level=int(match.group(1)),
            unroll_budget=int(match.group(2)),
            ii_budget=int(match.group(3)),
        )


REFERENCE_CONFIG = VariantConfig(2, 0, 0)


class VariantSpace:
    """An ordered, duplicate-free set of configs, reference first.

    The reference config is inserted at index 0 if the caller's list
    does not already contain it — the search cannot run without its
    baseline, and putting it first makes "prefer the standard pipeline
    on a tie" the automatic consequence of index-order tie-breaking.
    """

    def __init__(self, configs: Iterable[VariantConfig]):
        ordered: List[VariantConfig] = []
        seen = set()
        for config in configs:
            if not isinstance(config, VariantConfig):
                raise TypeError(
                    f"VariantSpace holds VariantConfig, got {type(config)!r}"
                )
            if config.key() in seen:
                continue
            seen.add(config.key())
            ordered.append(config)
        if not ordered:
            raise ValueError("a variant space needs at least one config")
        if REFERENCE_KEY not in seen:
            ordered.insert(0, REFERENCE_CONFIG)
        elif not ordered[0].is_reference:
            ordered.remove(REFERENCE_CONFIG)
            ordered.insert(0, REFERENCE_CONFIG)
        self.configs: Tuple[VariantConfig, ...] = tuple(ordered)

    def __iter__(self):
        return iter(self.configs)

    def __len__(self) -> int:
        return len(self.configs)

    def __getitem__(self, index: int) -> VariantConfig:
        return self.configs[index]

    @property
    def reference(self) -> VariantConfig:
        return self.configs[0]

    def keys(self) -> List[str]:
        return [config.key() for config in self.configs]

    def index_of(self, config: VariantConfig) -> int:
        return self.configs.index(config)

    def digest_text(self) -> str:
        """Canonical text form — part of the search's determinism story."""
        return ",".join(self.keys())

    @classmethod
    def from_keys(cls, keys: Sequence[str]) -> "VariantSpace":
        return cls(VariantConfig.from_key(key) for key in keys)

    @classmethod
    def parse(cls, spec: str) -> "VariantSpace":
        """Parse a ``--space`` argument: comma-separated config keys."""
        keys = [part for part in (p.strip() for p in spec.split(",")) if part]
        if not keys:
            raise ValueError("empty variant-space spec")
        return cls.from_keys(keys)

    def __repr__(self) -> str:
        return f"VariantSpace([{self.digest_text()}])"


def default_space() -> VariantSpace:
    """The stock lattice: small on purpose — each config costs one
    (cached) whole-module compile plus one simulation per function.

    - ``o2u0i0`` — the standard pipeline (reference);
    - ``o2u0i1`` — pipelining disabled: wins when a software-pipelined
      loop's fill/drain overhead exceeds its steady-state gain
      (short-trip loops);
    - ``o2u8i0`` / ``o2u64i0`` — full unrolling of constant-trip loops
      up to 8 / 64 iterations: trades code space for zero loop
      overhead and straight-line scheduling freedom;
    - ``o2u64i1`` — both: unrolled loops need no pipelining.
    """
    return VariantSpace(
        [
            REFERENCE_CONFIG,
            VariantConfig(2, 0, 1),
            VariantConfig(2, 8, 0),
            VariantConfig(2, 64, 0),
            VariantConfig(2, 64, 1),
        ]
    )
