"""Functional-unit resources of a Warp processing element.

Each cell is a VLIW engine: one instruction (bundle) per cycle may issue
at most one operation per functional unit.  The paper's motivation for
expensive compilation is exactly this: "supercomputers with multiple
pipelined functional units ... give a compiler an opportunity to produce
good (and sometimes even optimal) code, but determining the appropriate
code sequence can be expensive" (§1).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class FUClass(enum.Enum):
    """The six issue slots of a cell's wide instruction."""

    IALU = "ialu"  # integer ALU (also integer multiply/divide)
    FALU = "falu"  # floating adder / converter / comparator
    FMUL = "fmul"  # floating multiplier / divider
    MEM = "mem"  # local data-memory port
    IO = "io"  # inter-cell queue port
    SEQ = "seq"  # sequencer: branches, calls, returns

    def __str__(self) -> str:
        return self.value


@dataclass(frozen=True)
class OpSpec:
    """Where an operation issues and how long its result takes."""

    fu: FUClass
    latency: int  # cycles until the result is readable / visible

    def __post_init__(self):
        if self.latency < 1:
            raise ValueError(f"latency must be >= 1, got {self.latency}")


@dataclass(frozen=True)
class PhysReg:
    """A physical register: bank 'i' (integer) or 'f' (floating)."""

    bank: str
    index: int

    def __str__(self) -> str:
        return f"{self.bank}r{self.index}"
