"""I/O driver generation (part of compiler phase 4).

The Warp array is fed by a host: an input stream enters the leftmost cell
and results leave the rightmost cell.  The "I/O driver" is the glue the
compiler generates so the host knows how to stream data through a given
download module: which cells consume input, which produce output, and a
static estimate of per-invocation traffic.  Our array simulator consumes
this descriptor to wire the external queues.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from ..ir.instructions import Opcode
from .objformat import CellProgram


@dataclass
class CellIOProfile:
    """Static I/O facts about one cell program."""

    section_name: str
    entry: str
    static_receives: int = 0
    static_sends: int = 0

    @property
    def is_source_candidate(self) -> bool:
        return self.static_receives > 0

    @property
    def is_sink_candidate(self) -> bool:
        return self.static_sends > 0


@dataclass
class IODriver:
    """Host-side driver descriptor for a whole download module."""

    #: cell index -> profile
    profiles: Dict[int, CellIOProfile] = field(default_factory=dict)
    input_cell: int = 0
    output_cell: int = 0

    def describe(self) -> str:
        lines = [f"io-driver: input->cell {self.input_cell}, "
                 f"cell {self.output_cell}->output"]
        for cell_index in sorted(self.profiles):
            profile = self.profiles[cell_index]
            lines.append(
                f"  cell {cell_index}: section {profile.section_name} "
                f"entry {profile.entry} "
                f"(recv sites: {profile.static_receives}, "
                f"send sites: {profile.static_sends})"
            )
        return "\n".join(lines)


def build_io_driver(cell_programs: Dict[int, CellProgram]) -> IODriver:
    """Derive the host driver descriptor from the linked cell programs."""
    if not cell_programs:
        raise ValueError("cannot build an I/O driver for an empty module")
    driver = IODriver()
    for cell_index, program in cell_programs.items():
        receives = 0
        sends = 0
        for function in program.functions.values():
            for bundle in function.bundles:
                for op in bundle.all_ops():
                    if op.op is Opcode.RECV:
                        receives += 1
                    elif op.op is Opcode.SEND:
                        sends += 1
        driver.profiles[cell_index] = CellIOProfile(
            section_name=program.section_name,
            entry=program.entry,
            static_receives=receives,
            static_sends=sends,
        )
    driver.input_cell = min(cell_programs)
    driver.output_cell = max(cell_programs)
    return driver
