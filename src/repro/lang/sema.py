"""Semantic analysis for the W2-like Warp language (compiler phase 1).

The checker works over a whole *section* at a time: the paper's example
of a whole-section property — "to discover a type mismatch between a
function return value and its use at a call site, the semantic checker
has to process the complete section program" (§3.2).  The analysis is
deliberately split to expose exactly how much of it is *really*
cross-function:

- :func:`check_module_structure` and :func:`section_function_table`
  are the cheap sequential structure pass (duplicate sections/functions,
  cell ranges, empty sections);
- :class:`FunctionChecker` checks one function against a read-only table
  of its siblings' *signatures* — the only cross-function information a
  call site needs — so per-function checks can run in parallel;
- :func:`function_call_sites` + :func:`detect_call_cycles` implement the
  no-recursion rule over an already-collected call graph.

:class:`SemanticChecker` composes these into the sequential whole-module
pass; the parallel front end (:func:`repro.driver.phases.phase1_parallel`)
composes the same pieces with the per-function step fanned out.

Analysis annotates every expression with its type and returns a
:class:`SemaResult` with per-function symbol tables consumed by lowering.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from . import ast_nodes as ast
from .diagnostics import DiagnosticSink
from .types import (
    ArrayType,
    FLOAT,
    INT,
    Type,
    VOID,
    is_assignable,
    unify_arithmetic,
)

_LOGICAL_OPS = {"and", "or"}
_COMPARISON_OPS = {"=", "<>", "<", "<=", ">", ">="}
_ARITHMETIC_OPS = {"+", "-", "*", "/", "%"}

#: Hardware intrinsics: name -> argument count.  ``abs``/``min``/``max``
#: are type-generic; ``sqrt`` always yields float (the Warp cell has a
#: square-root unit beside the multiplier).
BUILTIN_FUNCTIONS = {"abs": 1, "sqrt": 1, "min": 2, "max": 2}


@dataclass
class Symbol:
    """A named variable (parameter or local) within one function."""

    name: str
    type: Type
    is_param: bool


@dataclass
class FunctionScope:
    """Symbol table for one function, in declaration order."""

    function: ast.Function
    symbols: Dict[str, Symbol] = field(default_factory=dict)

    def lookup(self, name: str) -> Optional[Symbol]:
        return self.symbols.get(name)


@dataclass
class SemaResult:
    """Output of semantic analysis for a whole module."""

    module: ast.Module
    #: (section name, function name) -> scope
    scopes: Dict[tuple, FunctionScope] = field(default_factory=dict)

    def scope_for(self, section: ast.Section, fn: ast.Function) -> FunctionScope:
        return self.scopes[(section.name, fn.name)]


# ---------------------------------------------------------------------------
# Structure pass (sequential, cheap)
# ---------------------------------------------------------------------------


def check_module_structure(module: ast.Module, sink: DiagnosticSink) -> None:
    """Module-level structural checks: duplicate section names,
    overlapping/empty cell ranges, no-sections."""
    seen_sections: Dict[str, ast.Section] = {}
    claimed_cells: Dict[int, str] = {}
    for section in module.sections:
        if section.name in seen_sections:
            sink.error(
                f"duplicate section name {section.name!r}", section.span
            )
        seen_sections[section.name] = section
        if section.first_cell > section.last_cell:
            sink.error(
                f"section {section.name!r} has an empty cell range "
                f"{section.first_cell}..{section.last_cell}",
                section.span,
            )
        for cell in range(section.first_cell, section.last_cell + 1):
            owner = claimed_cells.get(cell)
            if owner is not None:
                sink.error(
                    f"cell {cell} claimed by both section {owner!r} "
                    f"and section {section.name!r}",
                    section.span,
                )
            else:
                claimed_cells[cell] = section.name
    if not module.sections:
        sink.error(f"module {module.name!r} has no sections", module.span)


def section_function_table(
    section: ast.Section, sink: DiagnosticSink
) -> Dict[str, ast.Function]:
    """Name -> function for one section (first definition wins), with
    duplicate-function and empty-section errors reported in source order."""
    table: Dict[str, ast.Function] = {}
    for fn in section.functions:
        if fn.name in table:
            sink.error(
                f"duplicate function {fn.name!r} in section {section.name!r}",
                fn.span,
            )
        else:
            table[fn.name] = fn
    if not section.functions:
        sink.error(f"section {section.name!r} has no functions", section.span)
    return table


# ---------------------------------------------------------------------------
# Call-graph pass (no recursion on stackless cells)
# ---------------------------------------------------------------------------


def collect_calls(stmts: List[ast.Stmt]) -> List[tuple]:
    """All (callee name, span) pairs appearing in ``stmts``."""
    found: List[tuple] = []

    def visit_expr(expr: Optional[ast.Expr]) -> None:
        if expr is None:
            return
        if isinstance(expr, ast.CallExpr):
            found.append((expr.callee, expr.span))
            for arg in expr.args:
                visit_expr(arg)
        elif isinstance(expr, ast.BinaryExpr):
            visit_expr(expr.left)
            visit_expr(expr.right)
        elif isinstance(expr, ast.UnaryExpr):
            visit_expr(expr.operand)
        elif isinstance(expr, ast.IndexExpr):
            visit_expr(expr.base)
            visit_expr(expr.index)

    def visit_stmt(stmt: ast.Stmt) -> None:
        if isinstance(stmt, ast.AssignStmt):
            visit_expr(stmt.target)
            visit_expr(stmt.value)
        elif isinstance(stmt, ast.IfStmt):
            visit_expr(stmt.condition)
            for s in stmt.then_body:
                visit_stmt(s)
            for s in stmt.else_body:
                visit_stmt(s)
        elif isinstance(stmt, ast.ForStmt):
            visit_expr(stmt.low)
            visit_expr(stmt.high)
            visit_expr(stmt.step)
            for s in stmt.body:
                visit_stmt(s)
        elif isinstance(stmt, ast.WhileStmt):
            visit_expr(stmt.condition)
            for s in stmt.body:
                visit_stmt(s)
        elif isinstance(stmt, ast.ReturnStmt):
            visit_expr(stmt.value)
        elif isinstance(stmt, ast.SendStmt):
            visit_expr(stmt.value)
        elif isinstance(stmt, ast.ReceiveStmt):
            visit_expr(stmt.target)
        elif isinstance(stmt, ast.CallStmt):
            visit_expr(stmt.call)

    for stmt in stmts:
        visit_stmt(stmt)
    return found


def function_call_sites(fn: ast.Function) -> List[tuple]:
    """One (callee, first span) edge per distinct callee, name-sorted —
    the deterministic per-function slice of the section call graph."""
    first_span_by_callee: Dict[str, object] = {}
    for callee, span in collect_calls(fn.body):
        first_span_by_callee.setdefault(callee, span)
    return sorted(first_span_by_callee.items())


def detect_call_cycles(
    section_name: str, calls: Dict[str, List[tuple]], sink: DiagnosticSink
) -> None:
    """Reject recursive call cycles.

    Warp cells have no call stack: a function's scalars live in
    registers and its arrays are statically allocated, so recursion
    cannot be supported.  ``calls`` maps each function name to its
    :func:`function_call_sites` edges; iterative DFS cycle detection.
    """
    WHITE, GRAY, BLACK = 0, 1, 2
    color = {name: WHITE for name in calls}
    for root in calls:
        if color[root] != WHITE:
            continue
        stack = [(root, iter(calls[root]))]
        color[root] = GRAY
        while stack:
            name, edges = stack[-1]
            advanced = False
            for callee, span in edges:
                if callee not in calls:
                    continue
                if color[callee] == GRAY:
                    sink.error(
                        f"recursive call cycle through {callee!r} in "
                        f"section {section_name!r} (Warp cells have no "
                        "call stack)",
                        span,
                    )
                    continue
                if color[callee] == WHITE:
                    color[callee] = GRAY
                    stack.append((callee, iter(calls[callee])))
                    advanced = True
                    break
            if not advanced:
                color[name] = BLACK
                stack.pop()


# ---------------------------------------------------------------------------
# Per-function pass (parallelizable: reads only sibling signatures)
# ---------------------------------------------------------------------------


class FunctionChecker:
    """Checks one function against a read-only sibling table.

    The table needs only *signatures* (name, parameter names/types,
    return type): call-site checking never looks at a callee's body, so
    the parallel front end can hand every worker the same cheap stub
    table and check all functions of a section concurrently.  One
    instance checks one function; it owns no shared mutable state.
    """

    def __init__(
        self,
        section_functions: Dict[str, ast.Function],
        sink: DiagnosticSink,
    ):
        self._section_functions = section_functions
        self._sink = sink
        self._scope: Optional[FunctionScope] = None
        self._current_fn: Optional[ast.Function] = None
        self._saw_return = False

    def check(self, fn: ast.Function) -> FunctionScope:
        if fn.name in BUILTIN_FUNCTIONS:
            self._sink.error(
                f"function {fn.name!r} redefines a hardware intrinsic",
                fn.span,
            )
        scope = FunctionScope(fn)
        for param in fn.params:
            if not param.type.is_scalar():
                self._sink.error(
                    f"parameter {param.name!r} must be scalar, got {param.type}",
                    param.span,
                )
            if param.name in scope.symbols:
                self._sink.error(
                    f"duplicate parameter {param.name!r}", param.span
                )
            scope.symbols[param.name] = Symbol(param.name, param.type, is_param=True)
        for decl in fn.locals:
            if decl.name in scope.symbols:
                self._sink.error(
                    f"redeclaration of {decl.name!r}", decl.span
                )
                continue
            if isinstance(decl.type, ArrayType) and decl.type.length <= 0:
                self._sink.error(
                    f"array {decl.name!r} must have positive length, "
                    f"got {decl.type.length}",
                    decl.span,
                )
            scope.symbols[decl.name] = Symbol(decl.name, decl.type, is_param=False)

        self._scope = scope
        self._current_fn = fn
        self._saw_return = False
        for stmt in fn.body:
            self._check_stmt(stmt)
        if fn.return_type != VOID and not self._saw_return:
            self._sink.error(
                f"function {fn.name!r} declares return type {fn.return_type} "
                "but has no return statement",
                fn.span,
            )
        self._scope = None
        self._current_fn = None
        return scope

    # -- statements ----------------------------------------------------

    def _check_stmt(self, stmt: ast.Stmt) -> None:
        if isinstance(stmt, ast.AssignStmt):
            self._check_assign(stmt)
        elif isinstance(stmt, ast.IfStmt):
            self._check_condition(stmt.condition)
            for s in stmt.then_body:
                self._check_stmt(s)
            for s in stmt.else_body:
                self._check_stmt(s)
        elif isinstance(stmt, ast.ForStmt):
            self._check_for(stmt)
        elif isinstance(stmt, ast.WhileStmt):
            self._check_condition(stmt.condition)
            for s in stmt.body:
                self._check_stmt(s)
        elif isinstance(stmt, ast.ReturnStmt):
            self._check_return(stmt)
        elif isinstance(stmt, ast.SendStmt):
            value_type = self._check_expr(stmt.value)
            if value_type is not None and not value_type.is_scalar():
                self._sink.error(
                    f"send requires a scalar value, got {value_type}", stmt.span
                )
        elif isinstance(stmt, ast.ReceiveStmt):
            target_type = self._check_lvalue(stmt.target)
            if target_type is not None and not target_type.is_scalar():
                self._sink.error(
                    f"receive target must be scalar, got {target_type}", stmt.span
                )
        elif isinstance(stmt, ast.CallStmt):
            self._check_expr(stmt.call)
        else:  # pragma: no cover - exhaustive over AST statements
            raise AssertionError(f"unhandled statement {type(stmt).__name__}")

    def _check_assign(self, stmt: ast.AssignStmt) -> None:
        target_type = self._check_lvalue(stmt.target)
        value_type = self._check_expr(stmt.value)
        if target_type is None or value_type is None:
            return
        if not target_type.is_scalar():
            self._sink.error(
                f"cannot assign to a whole array (type {target_type})",
                stmt.target.span,
            )
            return
        if not is_assignable(target_type, value_type):
            self._sink.error(
                f"cannot assign {value_type} to {target_type}", stmt.span
            )

    def _check_for(self, stmt: ast.ForStmt) -> None:
        symbol = self._scope.lookup(stmt.var)
        if symbol is None:
            self._sink.error(
                f"undeclared loop variable {stmt.var!r}", stmt.span
            )
        elif symbol.type != INT:
            self._sink.error(
                f"loop variable {stmt.var!r} must be int, got {symbol.type}",
                stmt.span,
            )
        for bound in (stmt.low, stmt.high, stmt.step):
            if bound is None:
                continue
            bound_type = self._check_expr(bound)
            if bound_type is not None and bound_type != INT:
                self._sink.error(
                    f"loop bound must be int, got {bound_type}", bound.span
                )
        if stmt.step is not None:
            step = _constant_int_value(stmt.step)
            if step is None:
                self._sink.error(
                    "for-step ('by') must be an integer constant", stmt.step.span
                )
            elif step == 0:
                self._sink.error("for-step must be nonzero", stmt.step.span)
        for s in stmt.body:
            self._check_stmt(s)

    def _check_return(self, stmt: ast.ReturnStmt) -> None:
        self._saw_return = True
        declared = self._current_fn.return_type
        if stmt.value is None:
            if declared != VOID:
                self._sink.error(
                    f"function {self._current_fn.name!r} must return {declared}",
                    stmt.span,
                )
            return
        value_type = self._check_expr(stmt.value)
        if declared == VOID:
            self._sink.error(
                f"function {self._current_fn.name!r} has no return type "
                "but returns a value",
                stmt.span,
            )
        elif value_type is not None and not is_assignable(declared, value_type):
            self._sink.error(
                f"return type mismatch: declared {declared}, got {value_type}",
                stmt.span,
            )

    def _check_condition(self, expr: Optional[ast.Expr]) -> None:
        cond_type = self._check_expr(expr)
        if cond_type is not None and not cond_type.is_numeric():
            self._sink.error(
                f"condition must be numeric, got {cond_type}", expr.span
            )

    # -- expressions ---------------------------------------------------

    def _check_lvalue(self, expr: Optional[ast.Expr]) -> Optional[Type]:
        if isinstance(expr, ast.VarRef):
            return self._check_expr(expr)
        if isinstance(expr, ast.IndexExpr):
            return self._check_expr(expr)
        if expr is not None:
            self._sink.error("assignment target must be a variable or array element", expr.span)
        return None

    def _check_expr(self, expr: Optional[ast.Expr]) -> Optional[Type]:
        if expr is None:
            return None
        result = self._infer(expr)
        expr.type = result
        return result

    def _infer(self, expr: ast.Expr) -> Optional[Type]:
        if isinstance(expr, ast.IntLiteral):
            return INT
        if isinstance(expr, ast.FloatLiteral):
            return FLOAT
        if isinstance(expr, ast.VarRef):
            symbol = self._scope.lookup(expr.name)
            if symbol is None:
                self._sink.error(f"undeclared variable {expr.name!r}", expr.span)
                return None
            return symbol.type
        if isinstance(expr, ast.IndexExpr):
            return self._infer_index(expr)
        if isinstance(expr, ast.UnaryExpr):
            return self._infer_unary(expr)
        if isinstance(expr, ast.BinaryExpr):
            return self._infer_binary(expr)
        if isinstance(expr, ast.CallExpr):
            return self._infer_call(expr)
        raise AssertionError(  # pragma: no cover - exhaustive over AST exprs
            f"unhandled expression {type(expr).__name__}"
        )

    def _infer_index(self, expr: ast.IndexExpr) -> Optional[Type]:
        base_type = self._check_expr(expr.base)
        index_type = self._check_expr(expr.index)
        if index_type is not None and index_type != INT:
            self._sink.error(f"array index must be int, got {index_type}", expr.index.span)
        if base_type is None:
            return None
        if not isinstance(base_type, ArrayType):
            self._sink.error(f"cannot index a value of type {base_type}", expr.span)
            return None
        if isinstance(expr.index, ast.IntLiteral):
            if not 0 <= expr.index.value < base_type.length:
                self._sink.error(
                    f"constant index {expr.index.value} out of bounds for "
                    f"{base_type}",
                    expr.index.span,
                )
        return base_type.element

    def _infer_unary(self, expr: ast.UnaryExpr) -> Optional[Type]:
        operand_type = self._check_expr(expr.operand)
        if operand_type is None:
            return None
        if expr.op == "-":
            if not operand_type.is_numeric():
                self._sink.error(f"cannot negate {operand_type}", expr.span)
                return None
            return operand_type
        if expr.op == "not":
            if operand_type != INT:
                self._sink.error(f"'not' requires int, got {operand_type}", expr.span)
                return None
            return INT
        raise AssertionError(f"unknown unary operator {expr.op!r}")

    def _infer_binary(self, expr: ast.BinaryExpr) -> Optional[Type]:
        left = self._check_expr(expr.left)
        right = self._check_expr(expr.right)
        if left is None or right is None:
            return None
        if expr.op in _LOGICAL_OPS:
            if left != INT or right != INT:
                self._sink.error(
                    f"{expr.op!r} requires int operands, got {left} and {right}",
                    expr.span,
                )
                return None
            return INT
        if expr.op in _COMPARISON_OPS:
            if unify_arithmetic(left, right) is None:
                self._sink.error(
                    f"cannot compare {left} with {right}", expr.span
                )
                return None
            return INT
        if expr.op in _ARITHMETIC_OPS:
            if expr.op == "%" and (left != INT or right != INT):
                self._sink.error(
                    f"'%' requires int operands, got {left} and {right}", expr.span
                )
                return None
            result = unify_arithmetic(left, right)
            if result is None:
                self._sink.error(
                    f"invalid operands to {expr.op!r}: {left} and {right}",
                    expr.span,
                )
            return result
        raise AssertionError(f"unknown binary operator {expr.op!r}")

    def _infer_call(self, expr: ast.CallExpr) -> Optional[Type]:
        if expr.callee in BUILTIN_FUNCTIONS:
            return self._infer_builtin(expr)
        callee = self._section_functions.get(expr.callee)
        if callee is None:
            self._sink.error(
                f"call to undefined function {expr.callee!r} "
                "(callees must be defined in the same section)",
                expr.span,
            )
            for arg in expr.args:
                self._check_expr(arg)
            return None
        if len(expr.args) != len(callee.params):
            self._sink.error(
                f"function {expr.callee!r} takes {len(callee.params)} "
                f"argument(s), got {len(expr.args)}",
                expr.span,
            )
        for arg, param in zip(expr.args, callee.params):
            arg_type = self._check_expr(arg)
            if arg_type is not None and not is_assignable(param.type, arg_type):
                self._sink.error(
                    f"argument for {param.name!r} of {expr.callee!r} must be "
                    f"{param.type}, got {arg_type}",
                    arg.span,
                )
        # Extra args beyond the parameter list still get checked for types.
        for arg in expr.args[len(callee.params):]:
            self._check_expr(arg)
        if callee.return_type == VOID:
            return VOID
        return callee.return_type

    def _infer_builtin(self, expr: ast.CallExpr) -> Optional[Type]:
        arity = BUILTIN_FUNCTIONS[expr.callee]
        if len(expr.args) != arity:
            self._sink.error(
                f"intrinsic {expr.callee!r} takes {arity} argument(s), "
                f"got {len(expr.args)}",
                expr.span,
            )
        arg_types = [self._check_expr(arg) for arg in expr.args]
        checked = [t for t in arg_types if t is not None]
        if len(checked) != arity:
            return None
        for arg, arg_type in zip(expr.args, arg_types):
            if arg_type is not None and not arg_type.is_numeric():
                self._sink.error(
                    f"intrinsic {expr.callee!r} requires numeric arguments, "
                    f"got {arg_type}",
                    arg.span,
                )
                return None
        if expr.callee == "sqrt":
            return FLOAT
        if expr.callee == "abs":
            return checked[0]
        result = unify_arithmetic(checked[0], checked[1])
        if result is None:  # pragma: no cover - numeric args always unify
            self._sink.error(
                f"cannot combine {checked[0]} and {checked[1]} in "
                f"{expr.callee!r}",
                expr.span,
            )
        return result


# ---------------------------------------------------------------------------
# Whole-module orchestration (the sequential composition of the passes)
# ---------------------------------------------------------------------------


class SemanticChecker:
    """Checks one module and annotates its expressions with types."""

    def __init__(self, module: ast.Module, sink: DiagnosticSink):
        self._module = module
        self._sink = sink
        self._result = SemaResult(module)

    def check(self) -> SemaResult:
        check_module_structure(self._module, self._sink)
        for section in self._module.sections:
            self._check_section(section)
        return self._result

    def _check_section(self, section: ast.Section) -> None:
        table = section_function_table(section, self._sink)
        for fn in section.functions:
            checker = FunctionChecker(table, self._sink)
            self._result.scopes[(section.name, fn.name)] = checker.check(fn)
        calls = {
            fn.name: function_call_sites(fn) for fn in section.functions
        }
        detect_call_cycles(section.name, calls, self._sink)


def _constant_int_value(expr: ast.Expr) -> Optional[int]:
    """Evaluate an integer-constant expression (literal or negated literal)."""
    if isinstance(expr, ast.IntLiteral):
        return expr.value
    if isinstance(expr, ast.UnaryExpr) and expr.op == "-":
        inner = _constant_int_value(expr.operand)
        return None if inner is None else -inner
    return None


def check_module(module: ast.Module, sink: DiagnosticSink) -> SemaResult:
    """Run semantic analysis over ``module``, reporting problems to ``sink``."""
    return SemanticChecker(module, sink).check()
