"""§4.2.2 comparison: Katseff's data-partitioned parallel assembler [9].

Paper: "the speedup reported is about 6 for a large program and 4 for a
small one; adding processors past 8 for the large program (5 for the
small one) yields no further decrease in elapsed time.  Since the amount
of computation per processor is larger in our system, we are able to use
more processors but also observe the dependence on the input size."
"""

from figures_common import write_figure
from repro.asmlink.parallel_assembler import assemble_parallel
from repro.driver.sequential import SequentialCompiler
from repro.metrics.series import Figure
from repro.workloads.synthetic import synthetic_program

WORKERS = [1, 2, 4, 5, 8, 12, 16]


def _objects(size_class: str, n_functions: int):
    result = SequentialCompiler().compile(
        synthetic_program(size_class, n_functions)
    )
    return result.objects


def assembler_speedups(objects):
    base = assemble_parallel(objects, 1).critical_path_work
    return {
        w: base / assemble_parallel(objects, w).critical_path_work
        for w in WORKERS
    }


def build_figure() -> Figure:
    fig = Figure(
        "Katseff [9]",
        "Parallel assembler speedup (data partitioning)",
        "workers",
        "assembly speedup",
        xs=list(WORKERS),
    )
    large = fig.new_series("large program (16 functions)")
    for w, s in assembler_speedups(_objects("medium", 8) + _objects("small", 8)).items():
        large.add(w, s)
    small = fig.new_series("small program (4 functions)")
    for w, s in assembler_speedups(_objects("small", 4)).items():
        small.add(w, s)
    return fig


def test_katseff_parallel_assembler(benchmark, results_dir):
    fig = benchmark(build_figure)
    write_figure(results_dir, fig)

    large = fig.series_named("large program (16 functions)")
    small = fig.series_named("small program (4 functions)")

    # Both saturate: speedup grows then flattens.
    assert large.points[4] > large.points[2] > large.points[1]
    assert large.points[16] <= large.points[8] * 1.25
    assert large.points[16] == large.points[12]  # flat past ~8 workers
    assert small.points[16] <= small.points[4] * 1.05

    # The large program keeps scaling further than the small one.
    assert large.points[8] > small.points[8]
    # The small program is limited by its 4 partitions.
    assert small.points[16] <= 4.5
