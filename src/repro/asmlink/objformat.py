"""Object-code format for Warp cell programs.

Code generation (phase 3) produces one :class:`ObjectFunction` per source
function — this is exactly the artifact a *function master* ships back to
its section master in the parallel compiler.  The assembler resolves
labels to bundle indices, and the linker lays functions out into a
:class:`CellProgram` per processing element.

A :class:`Bundle` is one wide instruction: at most one operation per
functional unit, all issued in the same cycle.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple, Union

from ..ir.instructions import Opcode
from ..machine.resources import FUClass, PhysReg

#: Machine operands are physical registers or immediate numbers.
MachineOperand = Union[PhysReg, int, float]


@dataclass(frozen=True)
class MachineOp:
    """One operation inside a wide instruction."""

    op: Opcode
    fu: FUClass
    latency: int
    dest: Optional[PhysReg] = None
    operands: Tuple[MachineOperand, ...] = ()
    #: word offset of the accessed array within the function frame
    array_offset: Optional[int] = None
    #: source-level array identity, kept for alias analysis and debugging
    array_name: Optional[str] = None
    #: branch targets: label strings before assembly, bundle indices after
    labels: Tuple[Union[str, int], ...] = ()
    callee: Optional[str] = None

    def __str__(self) -> str:
        parts = [self.op.value]
        if self.dest is not None:
            parts.insert(0, f"{self.dest} =")
        if self.callee:
            parts.append(self.callee)
        if self.array_offset is not None:
            parts.append(f"[frame+{self.array_offset}]")
        if self.operands:
            parts.append(", ".join(str(v) for v in self.operands))
        if self.labels:
            parts.append("-> " + ", ".join(str(l) for l in self.labels))
        return " ".join(parts)


@dataclass
class Bundle:
    """One VLIW instruction: ops keyed by the functional unit they occupy."""

    ops: Dict[FUClass, MachineOp] = field(default_factory=dict)

    def add(self, op: MachineOp) -> None:
        if op.fu in self.ops:
            raise ValueError(f"slot {op.fu} already occupied in bundle")
        self.ops[op.fu] = op

    def occupied(self, fu: FUClass) -> bool:
        return fu in self.ops

    def is_empty(self) -> bool:
        return not self.ops

    def all_ops(self) -> List[MachineOp]:
        """Ops in a fixed slot order (deterministic for printing/digests)."""
        return [self.ops[fu] for fu in FUClass if fu in self.ops]

    def __str__(self) -> str:
        if self.is_empty():
            return "{nop}"
        return "{" + " | ".join(str(op) for op in self.all_ops()) + "}"


@dataclass
class ScheduledBlock:
    """A scheduled basic block: label plus its bundle sequence."""

    label: str
    bundles: List[Bundle] = field(default_factory=list)

    @property
    def cycle_count(self) -> int:
        return len(self.bundles)


@dataclass
class CodegenInfo:
    """Accounting attached to each object function (drives the cost model
    and the EXPERIMENTS reporting; not needed to execute the code)."""

    schedule_cycles: int = 0
    pipelined_loops: int = 0
    initiation_intervals: List[int] = field(default_factory=list)
    work_units: int = 0
    spill_slots: int = 0


@dataclass
class ObjectFunction:
    """Relocatable code for one function (pre-link)."""

    name: str
    section_name: str
    blocks: List[ScheduledBlock] = field(default_factory=list)
    param_regs: List[PhysReg] = field(default_factory=list)
    return_bank: Optional[str] = None  # 'i' / 'f' / None for void
    frame_words: int = 0
    info: CodegenInfo = field(default_factory=CodegenInfo)
    #: per-function diagnostics text recombined by the section master
    diagnostics: List[str] = field(default_factory=list)

    def bundle_count(self) -> int:
        return sum(len(b.bundles) for b in self.blocks)

    def digest_text(self) -> str:
        """Deterministic printable form, used to compare the sequential and
        parallel compilers' outputs bit-for-bit."""
        lines = [
            f"func {self.section_name}.{self.name} "
            f"params=({', '.join(str(r) for r in self.param_regs)}) "
            f"ret={self.return_bank or 'void'} frame={self.frame_words}"
        ]
        for block in self.blocks:
            lines.append(f"{block.label}:")
            lines.extend(f"  {bundle}" for bundle in block.bundles)
        return "\n".join(lines)


@dataclass
class AssembledFunction:
    """Code after label resolution: a flat bundle list."""

    name: str
    section_name: str
    bundles: List[Bundle] = field(default_factory=list)
    param_regs: List[PhysReg] = field(default_factory=list)
    return_bank: Optional[str] = None
    frame_words: int = 0
    info: CodegenInfo = field(default_factory=CodegenInfo)

    def digest_text(self) -> str:
        """Deterministic printable form of the post-assembly payload.

        Function masters assemble their own object function and seal the
        result into the task's payload digest; the supervisor re-derives
        this text to detect a corrupted :class:`AssembledFunction` before
        it can ever reach the linker.
        """
        lines = [
            f"asm {self.section_name}.{self.name} "
            f"params=({', '.join(str(r) for r in self.param_regs)}) "
            f"ret={self.return_bank or 'void'} frame={self.frame_words}"
        ]
        lines.extend(f"  {bundle}" for bundle in self.bundles)
        return "\n".join(lines)


@dataclass
class CellProgram:
    """Everything one cell needs: linked functions and frame layout."""

    section_name: str
    functions: Dict[str, AssembledFunction] = field(default_factory=dict)
    entry: str = "main"
    #: function name -> base word address of its (static) frame
    frame_bases: Dict[str, int] = field(default_factory=dict)
    data_words: int = 0

    def total_bundles(self) -> int:
        return sum(len(f.bundles) for f in self.functions.values())


@dataclass
class DownloadModule:
    """The final artifact of phase 4: one program per cell of the array."""

    module_name: str
    #: cell index -> program for that cell
    cell_programs: Dict[int, CellProgram] = field(default_factory=dict)
    diagnostics_text: str = ""

    @property
    def cells_used(self) -> int:
        return len(self.cell_programs)
