"""Streaming recombination: results flow, section masters don't wait.

The post-backend barrier is gone: every backend can yield results as
function masters finish (``run_tasks_streaming``), the driver consumes
through :func:`repro.parallel.backend.stream_task_results`, and
:class:`repro.driver.section_master.StreamingSectionCombiner` combines
each section the moment its last function lands.
"""

import pytest

from repro.driver.function_master import FunctionTask, run_compile_task
from repro.driver.master import ParallelCompiler
from repro.driver.phases import phase1_parse_and_check
from repro.driver.section_master import (
    SectionCombineError,
    StreamingSectionCombiner,
)
from repro.driver.sequential import SequentialCompiler
from repro.parallel.backend import stream_task_results
from repro.parallel.fault_tolerance import (
    FlakyBackend,
    RetryingBackend,
)
from repro.parallel.local import ProcessPoolBackend, SerialBackend
from repro.parallel.warm_pool import WarmPoolBackend

SOURCE = """
module streams
section a (cells 0..0)
  function a1(x: float) : float begin return x + 1.0; end
  function a2(x: float) : float begin return x * 2.0; end
end
section b (cells 1..1)
  function b1(x: float) : float begin return x - 3.0; end
end
end
"""


def build_tasks(granularity="function"):
    compiler = ParallelCompiler(granularity=granularity)
    return compiler._build_tasks(
        phase1_parse_and_check(SOURCE), SOURCE, "<t>"
    )


class TestStreamingBackends:
    def test_serial_backend_streams_lazily(self):
        stream = SerialBackend().run_tasks_streaming(build_tasks())
        first = next(stream)
        assert first.function_name == "a1"
        rest = [r.function_name for r in stream]
        assert rest == ["a2", "b1"]

    def test_adapter_falls_back_to_barrier_backends(self):
        class BarrierOnly:
            worker_count = 1
            effective_worker_count = 1

            def run_tasks(self, tasks):
                return [
                    result
                    for task in tasks
                    for result in run_compile_task(task)
                ]

        names = [
            r.function_name
            for r in stream_task_results(BarrierOnly(), build_tasks())
        ]
        assert names == ["a1", "a2", "b1"]

    def test_flaky_backend_streams_survivors_then_raises(self):
        from repro.parallel.fault_tolerance import FunctionMasterFailure

        # seed chosen so some tasks survive and at least one crashes:
        # the stream must deliver real partial progress before raising.
        flaky = FlakyBackend(SerialBackend(), 0.5, seed=3)
        survivors = []
        with pytest.raises(FunctionMasterFailure) as excinfo:
            for result in flaky.run_tasks_streaming(build_tasks()):
                survivors.append(result.function_name)
        assert survivors  # partial progress was yielded, not discarded
        assert excinfo.value.task.function_name not in survivors
        # the crash pattern matches the bulk API under the same seed
        twin = FlakyBackend(SerialBackend(), 0.5, seed=3)
        _, failures = twin.run_tasks_partial(build_tasks())
        assert excinfo.value.task.function_name == (
            failures[0].task.function_name
        )

    def test_supervised_streaming_over_flaky_backend(self):
        from repro.parallel.supervisor import SupervisedBackend

        flaky = FlakyBackend(
            SerialBackend(), 0.6, seed=11, max_failures_per_task=2
        )
        backend = SupervisedBackend(
            flaky, max_attempts=4, hedge_after=None, task_timeout=0
        )
        results = list(backend.run_tasks_streaming(build_tasks()))
        assert sorted(r.function_name for r in results) == ["a1", "a2", "b1"]
        assert flaky.injected_failures > 0

    def test_supervised_warm_pool_streaming_digest(self):
        from repro.parallel.supervisor import SupervisedBackend

        sequential = SequentialCompiler().compile(SOURCE)
        with WarmPoolBackend(max_workers=2) as inner:
            backend = SupervisedBackend(inner)
            parallel = ParallelCompiler(backend=backend).compile(SOURCE)
        assert parallel.digest == sequential.digest
        assert backend.supervision.poisoned_tasks == 0

    def test_retrying_backend_streams_and_retries(self):
        flaky = FlakyBackend(
            SerialBackend(), 0.6, seed=11, max_failures_per_task=2
        )
        backend = RetryingBackend(flaky, max_attempts=4)
        results = list(backend.run_tasks_streaming(build_tasks()))
        assert sorted(r.function_name for r in results) == ["a1", "a2", "b1"]
        assert flaky.injected_failures > 0

    def test_retrying_backend_delegates_inner_attributes(self):
        inner = WarmPoolBackend(max_workers=1)
        wrapped = RetryingBackend(inner)
        # Not defined on the wrapper: must come from the warm pool.
        assert wrapped.is_warm is False
        assert wrapped.dispatches == 0
        wrapped.shutdown()  # delegates too
        with pytest.raises(AttributeError):
            wrapped.definitely_not_an_attribute

    def test_process_pool_streaming_digest(self):
        sequential = SequentialCompiler().compile(SOURCE)
        backend = ProcessPoolBackend(max_workers=2)
        parallel = ParallelCompiler(backend=backend).compile(SOURCE)
        assert parallel.digest == sequential.digest

    def test_warm_pool_streaming_digest_and_reuse(self):
        sequential = SequentialCompiler().compile(SOURCE)
        with WarmPoolBackend(max_workers=2) as backend:
            compiler = ParallelCompiler(backend=backend)
            assert compiler.compile(SOURCE).digest == sequential.digest
            assert compiler.compile(SOURCE).digest == sequential.digest
            assert backend.dispatches == 2


class TestStreamingSectionCombiner:
    def sections(self):
        return phase1_parse_and_check(SOURCE).module.sections

    def results(self):
        return [
            result
            for task in build_tasks()
            for result in run_compile_task(task)
        ]

    def test_section_combines_on_last_result(self):
        combiner = StreamingSectionCombiner(self.sections())
        a1, a2, b1 = self.results()
        assert combiner.add(b1) is not None  # b is complete already
        assert combiner.sections_combined == 1
        assert combiner.add(a1) is None
        combined_a = combiner.add(a2)
        assert combined_a is not None
        assert [obj.name for obj in combined_a.objects] == ["a1", "a2"]
        combined = combiner.finalize()
        assert sorted(combined) == ["a", "b"]

    def test_arrival_order_does_not_matter(self):
        combiner = StreamingSectionCombiner(self.sections())
        a1, a2, b1 = self.results()
        combiner.add(a2)
        combiner.add(a1)
        combiner.add(b1)
        combined = combiner.finalize()
        assert [obj.name for obj in combined["a"].objects] == ["a1", "a2"]

    def test_missing_results_fail_finalize(self):
        combiner = StreamingSectionCombiner(self.sections())
        a1, _, _ = self.results()
        combiner.add(a1)
        with pytest.raises(SectionCombineError, match="missing"):
            combiner.finalize()

    def test_duplicate_result_detected(self):
        combiner = StreamingSectionCombiner(self.sections())
        a1, _, _ = self.results()
        combiner.add(a1)
        with pytest.raises(SectionCombineError, match="duplicate"):
            combiner.add(a1)

    def test_unknown_section_rejected(self):
        combiner = StreamingSectionCombiner(self.sections())
        stray = run_compile_task(
            FunctionTask(SOURCE, "<t>", "a", "a1")
        )[0]
        stray.section_name = "zz"
        with pytest.raises(SectionCombineError, match="unknown section"):
            combiner.add(stray)

    def test_late_result_for_combined_section_rejected(self):
        combiner = StreamingSectionCombiner(self.sections())
        _, _, b1 = self.results()
        combiner.add(b1)
        duplicate = self.results()[2]
        with pytest.raises(SectionCombineError, match="late result"):
            combiner.add(duplicate)
