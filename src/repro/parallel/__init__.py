"""Parallel execution backends and scheduling strategies."""

from .backend import ExecutionBackend
from .fault_tolerance import (
    FlakyBackend,
    FunctionMasterFailure,
    RetryBudgetExceeded,
    RetryingBackend,
)
from .local import ProcessPoolBackend, SerialBackend
from .parallel_make import (
    MakeCycleError,
    MakeResult,
    MakeTarget,
    simulate_parallel_make,
)
from .schedule import (
    Assignment,
    fcfs_assignment,
    grouped_lpt_assignment,
    lines_and_nesting_cost,
    one_function_per_processor,
    work_units_cost,
)

__all__ = [
    "Assignment",
    "ExecutionBackend",
    "FlakyBackend",
    "FunctionMasterFailure",
    "MakeCycleError",
    "RetryBudgetExceeded",
    "RetryingBackend",
    "MakeResult",
    "MakeTarget",
    "ProcessPoolBackend",
    "SerialBackend",
    "fcfs_assignment",
    "grouped_lpt_assignment",
    "lines_and_nesting_cost",
    "one_function_per_processor",
    "simulate_parallel_make",
    "work_units_cost",
]
