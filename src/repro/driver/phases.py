"""The four compiler phases (paper §3.2).

1. parsing and semantic checking — sequential by default
   (:func:`phase1_parse_and_check`), but parallel and incremental on
   demand (:func:`phase1_parallel`, ``--phase1-jobs``): a boundary scan
   splits the module at function heads, the function bodies are parsed
   and checked concurrently against a shared signature table, and
   per-function results are reused across runs through the span-hash
   parse cache (:mod:`repro.cache.parse_store`).  The parallel path is
   bit-identical to the sequential one; any deviation (or any
   diagnostic) falls back to the sequential front end, which remains
   the canonical oracle;
2. flowgraph construction, local optimization, global dependencies;
3. software pipelining and code generation;
4. I/O driver generation, assembly, and post-processing (linking,
   download-module construction).

Phases 2 and 3 run per function — :func:`compile_one_function` is the
exact unit of work a function master executes.  Phase 4 has the same
two gears as phase 1: :func:`phase4_link_and_download` is the canonical
sequential tail, and :func:`phase4_parallel` /:class:`Phase4Runner` run
per-section links concurrently (sections are independent by
construction) over pre-assembled function-master payloads, with a
persistent link/module cache (:mod:`repro.cache.link_store`) and a
sequential fallback on any irregularity so diagnostics and digests stay
byte-identical.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..cache.link_store import LinkCache
    from .section_master import CombinedSection

from ..asmlink.download import build_download_module, module_size_words
from ..asmlink.iodriver import build_io_driver
from ..asmlink.linker import link_section, link_work_units
from ..asmlink.assembler import assemble_function, assembly_work_units
from ..asmlink.objformat import (
    AssembledFunction,
    CellProgram,
    DownloadModule,
    ObjectFunction,
)
from ..codegen.compiler import compile_function
from ..ir.lowering import lower_function
from ..ir.loops import loop_nest_weight
from ..lang import ast_nodes as ast
from ..lang.boundary import scan_boundaries
from ..lang.diagnostics import CompileError, DiagnosticSink
from ..lang.lexer import tokenize
from ..lang.parser import Parser
from ..lang.sema import (
    FunctionChecker,
    SemaResult,
    check_module,
    check_module_structure,
    detect_call_cycles,
    function_call_sites,
    section_function_table,
)
from ..lang.source import SourceFile, Span, WindowedSource
from ..lang.tokens import Token, TokenKind
from ..machine.warp_array import WarpArrayModel
from .results import FunctionReport


@dataclass
class ParsedProgram:
    """Phase-1 output: the checked AST plus partitioning information."""

    module: ast.Module
    sema: SemaResult
    sink: DiagnosticSink
    parse_work: int
    sema_work: int
    source_lines: int


@dataclass
class Phase1Stats:
    """Telemetry for one phase-1 run (either front end).

    ``parse_ms``/``sema_ms`` are *aggregate* CPU-ish time — on the
    parallel path they sum per-window worker time, so they measure work,
    not wall clock.  ``skeleton_work``/``window_work`` are deterministic
    token counts feeding :func:`phase1_critical_path_work`.
    """

    mode: str = "sequential"  # sequential | parallel | fallback | memo
    jobs: int = 1
    parse_ms: float = 0.0
    sema_ms: float = 0.0
    cache_hits: int = 0
    cache_misses: int = 0
    fallback_reason: Optional[str] = None
    #: tokens handled sequentially (skeleton gaps + its EOF-less tail)
    skeleton_work: int = 0
    #: tokens per function window, in source order (cache hits included —
    #: a hit still *represents* that many tokens of parse work)
    window_work: List[int] = field(default_factory=list)


def default_phase1_jobs() -> int:
    """Same sizing heuristic as the warm worker farm: all cores but one."""
    return max(1, (os.cpu_count() or 2) - 1)


def phase1_critical_path_work(stats: Phase1Stats, jobs: int) -> int:
    """Deterministic work-unit model of parallel phase 1's critical path.

    LPT-schedules the per-window token counts onto ``jobs`` workers and
    returns the sequential skeleton work plus the busiest worker's load.
    This is the machine-independent scaling measure the benchmarks
    guard: wall clock on a CPython thread pool is GIL-bound, but the
    critical path is what a free-threaded or process-backed phase 1
    would pay.
    """
    if jobs < 1:
        raise ValueError(f"jobs must be positive, got {jobs}")
    loads = [0] * jobs
    for work in sorted(stats.window_work, reverse=True):
        loads[loads.index(min(loads))] += work
    return stats.skeleton_work + (max(loads) if loads else 0)


def phase1_parse_and_check(
    source_text: str,
    filename: str = "<input>",
    stats: Optional[Phase1Stats] = None,
) -> ParsedProgram:
    """Parse and semantically check; raises CompileError on any error.

    This is what the master runs "to obtain enough information to set up
    the parallel compilation ... if there are any syntax or semantic
    errors in the program, they are discovered at this time and the
    compilation is aborted."
    """
    source = SourceFile(filename, source_text)
    sink = DiagnosticSink()
    t0 = time.perf_counter()
    tokens = tokenize(source, sink)
    module = Parser(tokens, sink).parse_module()
    if stats is not None:
        stats.parse_ms += (time.perf_counter() - t0) * 1000.0
    if sink.has_errors:
        raise CompileError(sink.diagnostics)
    t1 = time.perf_counter()
    sema = check_module(module, sink)
    if stats is not None:
        stats.sema_ms += (time.perf_counter() - t1) * 1000.0
    if sink.has_errors:
        raise CompileError(sink.diagnostics)
    # Work proxies: tokens for scanning/parsing, statements for checking.
    parse_work = len(tokens)
    sema_work = _ast_size(module)
    return ParsedProgram(
        module=module,
        sema=sema,
        sink=sink,
        parse_work=parse_work,
        sema_work=sema_work,
        source_lines=source.count_lines(),
    )


# ---------------------------------------------------------------------------
# Parallel + incremental phase 1
# ---------------------------------------------------------------------------


class _WindowProblem(Exception):
    """Internal: the fast path hit something only the sequential front
    end may diagnose; unwinds to the fallback."""

    def __init__(self, reason: str):
        super().__init__(reason)
        self.reason = reason


def _phase1_fallback(
    source_text: str,
    filename: str,
    stats: Optional[Phase1Stats],
    reason: str,
) -> ParsedProgram:
    """Re-run the sequential front end for canonical results/diagnostics."""
    if stats is not None:
        stats.mode = "fallback"
        stats.fallback_reason = reason
    return phase1_parse_and_check(source_text, filename, stats=stats)


def _lex_skeleton(
    source: SourceFile, windows, sink: DiagnosticSink
) -> List[Token]:
    """Lex the text *between* function windows (module/section headers
    and closing ``end``s) into one token stream, EOF-terminated at the
    file's true end.  Token spans are absolute, so the skeleton parse
    yields module/section nodes with sequential-identical spans."""
    text = source.text
    gaps: List[Tuple[int, int]] = []
    pos = 0
    for w in windows:
        gaps.append((pos, w.start))
        pos = w.end
    gaps.append((pos, len(text)))
    tokens: List[Token] = []
    for start, end in gaps:
        if start >= end:
            continue
        view = WindowedSource(
            source.filename, text[start:end], source.position_at(start)
        )
        tokens.extend(tokenize(view, sink)[:-1])  # strip the gap's EOF
    eof_pos = source.position_at(len(text))
    tokens.append(
        Token(
            TokenKind.EOF,
            "",
            Span(source.filename, eof_pos, eof_pos),
            None,
        )
    )
    return tokens


def _parse_signature_stub(
    source: SourceFile, window
) -> Optional[ast.Function]:
    """Header-only parse of one window (name, params, return type)."""
    sink = DiagnosticSink()
    view = WindowedSource(
        source.filename,
        source.text[window.start : window.header_end],
        source.position_at(window.start),
    )
    tokens = tokenize(view, sink)
    stub = Parser(tokens, sink).parse_function_signature()
    if stub is None or sink.has_errors:
        return None
    return stub


def _parse_and_check_window(
    source: SourceFile,
    window,
    table: Dict[str, ast.Function],
) -> Tuple[ast.Function, object, List[Tuple[str, Span]], int, float, float]:
    """One worker's job: lex, parse, and check a single function window.

    Returns ``(fn, scope, calls, token_count, parse_s, sema_s)``; raises
    :class:`_WindowProblem` on any diagnostic (the fallback re-derives
    the canonical error report sequentially).
    """
    sink = DiagnosticSink()
    base = source.position_at(window.start)
    view = WindowedSource(
        source.filename, source.text[window.start : window.end], base
    )
    t0 = time.perf_counter()
    tokens = tokenize(view, sink)
    fn = Parser(tokens, sink).parse_function()
    parse_s = time.perf_counter() - t0
    if fn is None or sink.has_errors:
        raise _WindowProblem("window parse error")
    t1 = time.perf_counter()
    scope = FunctionChecker(table, sink).check(fn)
    sema_s = time.perf_counter() - t1
    if sink.has_errors:
        raise _WindowProblem("window sema error")
    calls = function_call_sites(fn)
    return fn, scope, calls, len(tokens) - 1, parse_s, sema_s


def phase1_parallel(
    source_text: str,
    filename: str = "<input>",
    jobs: Optional[int] = None,
    parse_cache=None,
    stats: Optional[Phase1Stats] = None,
) -> ParsedProgram:
    """Parallel + incremental phase 1; bit-identical to the sequential
    front end, to which it falls back on *any* irregularity.

    Pipeline: boundary-scan the text into per-function byte windows;
    parse the skeleton (everything between windows) sequentially; parse
    each function *header* sequentially to build the per-section
    signature table; then parse+check every function body concurrently
    (``jobs`` threads) against that read-only table — or serve it from
    ``parse_cache`` (a :class:`~repro.cache.parse_store.ParseCache`),
    span-rebased to its current location.  A final sequential structure
    pass re-checks the whole-module properties (duplicate names, cell
    ranges, call cycles).

    Any diagnostic anywhere aborts the fast path and re-runs
    :func:`phase1_parse_and_check`, whose error report is canonical —
    errors abort compilation anyway, so the doubled front-end cost on
    the error path is irrelevant.
    """
    if jobs is None:
        jobs = default_phase1_jobs()
    if stats is not None:
        stats.jobs = jobs

    boundaries = scan_boundaries(source_text)
    if boundaries is None:
        return _phase1_fallback(
            source_text, filename, stats, "boundary scan failed"
        )
    source = SourceFile(filename, source_text)
    windows = boundaries.all_windows()

    # -- skeleton: module/section structure without function bodies -----
    t_skel = time.perf_counter()
    skeleton_sink = DiagnosticSink()
    skeleton_tokens = _lex_skeleton(source, windows, skeleton_sink)
    module = Parser(skeleton_tokens, skeleton_sink).parse_module()
    skeleton_s = time.perf_counter() - t_skel
    if skeleton_sink.has_errors:
        return _phase1_fallback(
            source_text, filename, stats, "skeleton parse error"
        )
    if len(module.sections) != len(boundaries.sections) or any(
        sec.functions for sec in module.sections
    ):
        return _phase1_fallback(
            source_text, filename, stats, "skeleton/boundary mismatch"
        )

    # -- signature pass: headers only, sequential -----------------------
    t_sig = time.perf_counter()
    section_tables: List[Dict[str, ast.Function]] = []
    section_hashes: List[Optional[str]] = []
    for sec_node, sec_bounds in zip(module.sections, boundaries.sections):
        stubs = []
        for window in sec_bounds.function_windows:
            stub = _parse_signature_stub(source, window)
            if stub is None:
                return _phase1_fallback(
                    source_text, filename, stats, "signature parse error"
                )
            stubs.append(stub)
        table: Dict[str, ast.Function] = {}
        for stub in stubs:  # first definition wins, like sema's table
            table.setdefault(stub.name, stub)
        section_tables.append(table)
        if parse_cache is not None:
            from ..cache.parse_store import signature_table_hash

            section_hashes.append(
                signature_table_hash(
                    sec_node.name,
                    sec_node.first_cell,
                    sec_node.last_cell,
                    stubs,
                )
            )
        else:
            section_hashes.append(None)
    signature_s = time.perf_counter() - t_sig

    # -- per-function pass: cache hits, then concurrent parse+check -----
    jobs_list: List[Tuple[int, int, object]] = []  # (sec idx, win idx, window)
    for sec_idx, sec_bounds in enumerate(boundaries.sections):
        for win_idx, window in enumerate(sec_bounds.function_windows):
            jobs_list.append((sec_idx, win_idx, window))

    results: Dict[Tuple[int, int], tuple] = {}
    keys: Dict[Tuple[int, int], str] = {}
    misses: List[Tuple[int, int, object]] = []
    cache_hits = cache_misses = 0
    if parse_cache is not None:
        from ..cache.parse_store import window_key

        for sec_idx, win_idx, window in jobs_list:
            base = source.position_at(window.start)
            key = window_key(
                source_text[window.start : window.end],
                base.column,
                section_hashes[sec_idx],
            )
            keys[(sec_idx, win_idx)] = key
            entry = parse_cache.get(key, base=base, filename=filename)
            if entry is not None:
                cache_hits += 1
                results[(sec_idx, win_idx)] = (
                    entry.function,
                    entry.scope,
                    entry.calls,
                    entry.token_count,
                    0.0,
                    0.0,
                )
            else:
                cache_misses += 1
                misses.append((sec_idx, win_idx, window))
    else:
        misses = jobs_list

    try:
        if jobs > 1 and len(misses) > 1:
            with ThreadPoolExecutor(
                max_workers=min(jobs, len(misses))
            ) as pool:
                futures = [
                    (
                        sec_idx,
                        win_idx,
                        pool.submit(
                            _parse_and_check_window,
                            source,
                            window,
                            section_tables[sec_idx],
                        ),
                    )
                    for sec_idx, win_idx, window in misses
                ]
                for sec_idx, win_idx, future in futures:
                    results[(sec_idx, win_idx)] = future.result()
        else:
            for sec_idx, win_idx, window in misses:
                results[(sec_idx, win_idx)] = _parse_and_check_window(
                    source, window, section_tables[sec_idx]
                )
    except _WindowProblem as problem:
        return _phase1_fallback(source_text, filename, stats, problem.reason)

    if parse_cache is not None and misses:
        from ..cache.parse_store import ParseEntry

        for sec_idx, win_idx, window in misses:
            fn, scope, calls, token_count, _, _ = results[(sec_idx, win_idx)]
            parse_cache.put(
                keys[(sec_idx, win_idx)],
                ParseEntry(
                    function=fn,
                    scope=scope,
                    calls=calls,
                    token_count=token_count,
                    base=source.position_at(window.start),
                    filename=filename,
                ),
            )

    # -- splice + sequential structure pass -----------------------------
    for sec_idx, (sec_node, sec_bounds) in enumerate(
        zip(module.sections, boundaries.sections)
    ):
        sec_node.functions = [
            results[(sec_idx, win_idx)][0]
            for win_idx in range(len(sec_bounds.function_windows))
        ]
    t_struct = time.perf_counter()
    structure_sink = DiagnosticSink()
    check_module_structure(module, structure_sink)
    for sec_node in module.sections:
        section_function_table(sec_node, structure_sink)
    for sec_idx, sec_node in enumerate(module.sections):
        calls = {}
        for win_idx in range(len(sec_node.functions)):
            fn, _scope, fn_calls, *_ = results[(sec_idx, win_idx)]
            calls[fn.name] = fn_calls
        detect_call_cycles(sec_node.name, calls, structure_sink)
    structure_s = time.perf_counter() - t_struct
    if structure_sink.has_errors:
        return _phase1_fallback(
            source_text, filename, stats, "structure pass error"
        )

    sema = SemaResult(module)
    window_work: List[int] = []
    parse_s_total = sema_s_total = 0.0
    for sec_idx, sec_node in enumerate(module.sections):
        for win_idx, fn in enumerate(sec_node.functions):
            _fn, scope, _calls, token_count, parse_s, sema_s = results[
                (sec_idx, win_idx)
            ]
            sema.scopes[(sec_node.name, fn.name)] = scope
            window_work.append(token_count)
            parse_s_total += parse_s
            sema_s_total += sema_s

    if stats is not None:
        stats.mode = "parallel"
        stats.cache_hits = cache_hits
        stats.cache_misses = cache_misses
        stats.skeleton_work = len(skeleton_tokens) - 1
        stats.window_work = window_work
        stats.parse_ms += (skeleton_s + signature_s + parse_s_total) * 1000.0
        stats.sema_ms += (structure_s + sema_s_total) * 1000.0

    # Token identity: sequential lexing sees every skeleton token, every
    # window token, and one EOF — exactly what the two counts sum to.
    parse_work = len(skeleton_tokens) + sum(window_work)
    return ParsedProgram(
        module=module,
        sema=sema,
        sink=DiagnosticSink(),
        parse_work=parse_work,
        sema_work=_ast_size(module),
        source_lines=source.count_lines(),
    )


def _ast_size(module: ast.Module) -> int:
    """Statement-level size proxy for semantic-checking work."""
    total = 0
    for _section, fn in module.all_functions():
        total += 2 + len(fn.params) + len(fn.locals) + _stmt_count(fn.body)
    return total


def _stmt_count(stmts: List[ast.Stmt]) -> int:
    count = 0
    for stmt in stmts:
        count += 1
        if isinstance(stmt, ast.IfStmt):
            count += _stmt_count(stmt.then_body) + _stmt_count(stmt.else_body)
        elif isinstance(stmt, (ast.ForStmt, ast.WhileStmt)):
            count += _stmt_count(stmt.body)
    return count


def compile_one_function(
    parsed: ParsedProgram,
    section_name: str,
    function_name: str,
    array: WarpArrayModel,
    opt_level: int = 2,
    unroll_budget: int = 0,
    ii_budget: int = 0,
) -> Tuple[ObjectFunction, FunctionReport]:
    """Phases 2+3 for exactly one function (a function master's job).

    ``unroll_budget``/``ii_budget`` are the variant-search codegen knobs
    (see :func:`repro.codegen.compiler.compile_function`); the defaults
    are the standard pipeline.
    """
    section = parsed.module.section_named(section_name)
    if section is None:
        raise KeyError(f"no section named {section_name!r}")
    function = section.function_named(function_name)
    if function is None:
        raise KeyError(
            f"no function {function_name!r} in section {section_name!r}"
        )
    fn_ir = lower_function(section, function, parsed.sema)
    ir_size = fn_ir.instruction_count()
    weight = loop_nest_weight(fn_ir)
    obj = compile_function(
        fn_ir,
        array.cell,
        opt_level=opt_level,
        unroll_budget=unroll_budget,
        ii_budget=ii_budget,
    )
    report = FunctionReport(
        section_name=section_name,
        name=function_name,
        source_lines=function.line_count(),
        ir_instructions=ir_size,
        loop_weight=weight,
        work_units=obj.info.work_units,
        bundles=obj.bundle_count(),
        pipelined_loops=obj.info.pipelined_loops,
        initiation_intervals=list(obj.info.initiation_intervals),
        frame_words=obj.frame_words,
    )
    return obj, report


def phase4_link_and_download(
    parsed: ParsedProgram,
    objects: Dict[str, List[ObjectFunction]],
    array: WarpArrayModel,
    diagnostics_text: str = "",
) -> Tuple[DownloadModule, int, int]:
    """Assembly, linking, I/O driver, download module (sequential tail).

    ``objects`` maps section name -> object functions in source order.
    Returns (module, assembly work, link work).
    """
    section_cells: Dict[str, Tuple[int, int]] = {}
    programs = {}
    assembly_work = 0
    link_work = 0
    for section in parsed.module.sections:
        array.validate_section_range(section.first_cell, section.last_cell)
        section_cells[section.name] = (section.first_cell, section.last_cell)
        section_objects = objects[section.name]
        assembly_work += sum(assembly_work_units(o) for o in section_objects)
        link_work += link_work_units(section_objects)
        programs[section.name] = link_section(
            section.name, section_objects, array.cell
        )
    module = build_download_module(
        parsed.module.name, section_cells, programs, diagnostics_text
    )
    build_io_driver(module.cell_programs)  # validates I/O wiring
    return module, assembly_work, link_work


# ---------------------------------------------------------------------------
# Parallel + incremental phase 4.
#
# Sections are independent by construction — link_section reads one
# section's object functions and the cell model, nothing else — so the
# per-section links can run concurrently, and each one can start the
# moment its streaming recombiner completes.  Assembly itself has
# already been *distributed*: function masters ship an
# AssembledFunction beside each ObjectFunction, so the link jobs mostly
# just lay out pre-assembled code.  Everything below mirrors the
# phase-1 contract: the sequential phase4_link_and_download stays the
# canonical oracle, and any irregularity on the fast path (a poisoned
# or failed function, a validation error, an exception in a link job)
# falls back to it wholesale so diagnostics and digests stay
# byte-identical.
# ---------------------------------------------------------------------------


@dataclass
class Phase4Stats:
    """Telemetry for one phase-4 run (either back end).

    ``assembly_ms``/``link_ms`` are *aggregate* worker time summed over
    link jobs, so they measure work, not wall clock.  The
    ``section_*_work`` lists are deterministic work units feeding
    :func:`phase4_critical_path_work`.
    """

    mode: str = "sequential"  # sequential | parallel | cached | fallback
    jobs: int = 1
    assembly_ms: float = 0.0
    link_ms: float = 0.0
    link_cache_hits: int = 0
    link_cache_misses: int = 0
    module_cache_hit: bool = False
    fallback_reason: Optional[str] = None
    #: per-section assembly work units, in module order (what the
    #: function masters absorbed via distributed assembly)
    section_assembly_work: List[int] = field(default_factory=list)
    #: per-section link work units, in module order
    section_link_work: List[int] = field(default_factory=list)
    #: sequential tail: download-module replication + I/O driver
    #: bookkeeping (cells used plus one unit per section)
    tail_work: int = 0


def default_phase4_jobs() -> int:
    """Same sizing heuristic as the warm worker farm: all cores but one."""
    return max(1, (os.cpu_count() or 2) - 1)


def phase4_critical_path_work(
    stats: Phase4Stats, jobs: int, distributed_assembly: bool = True
) -> int:
    """Deterministic work-unit model of phase 4's critical path.

    LPT-schedules the per-section work onto ``jobs`` link workers and
    returns the sequential tail work plus the busiest worker's load.
    With ``distributed_assembly`` each section costs only its link work
    (assembly rode the phase-2/3 function masters); without it, each
    section also pays its assembly work inline — ``jobs=1`` with
    ``distributed_assembly=False`` is exactly the sequential back end.
    Wall clock on a CPython thread pool is GIL-bound, so this
    machine-independent critical path is what the benchmarks guard.
    """
    if jobs < 1:
        raise ValueError(f"jobs must be positive, got {jobs}")
    per_section = list(stats.section_link_work)
    if not distributed_assembly:
        per_section = [
            a + l for a, l in zip(stats.section_assembly_work, per_section)
        ]
    loads = [0] * jobs
    for work in sorted(per_section, reverse=True):
        loads[loads.index(min(loads))] += work
    return stats.tail_work + (max(loads) if loads else 0)


def _assembly_matches(asm: AssembledFunction, obj: ObjectFunction) -> bool:
    """Cheap sanity check that a shipped pre-assembled payload belongs
    to this object function; a mismatch (corruption the supervisor did
    not see, or a hand-built result) means: assemble fresh."""
    return (
        asm.name == obj.name
        and asm.section_name == obj.section_name
        and asm.frame_words == obj.frame_words
        and len(asm.bundles) == obj.bundle_count()
    )


class Phase4Runner:
    """Streaming parallel back end: one link job per combined section.

    The driver hands each :class:`~repro.driver.section_master.CombinedSection`
    to :meth:`section_ready` as the streaming recombiner completes it —
    link jobs overlap the remaining phase-2/3 compiles — then calls
    :meth:`finish` to gather the programs and build the download
    module.  With a :class:`~repro.cache.link_store.LinkCache`, each
    job first consults the section tier, and :meth:`lookup_module` can
    skip phase 4 entirely on a fully-warm recompile.

    Any irregularity — a poisoned or failed function, a range-validation
    error, a duplicate delivery, an exception in any link job — taints
    the run and :meth:`finish` falls back to the sequential
    :func:`phase4_link_and_download`, which re-raises the canonical
    error or re-links everything; either way the output is byte-for-byte
    what the sequential compiler produces.
    """

    def __init__(
        self,
        parsed: ParsedProgram,
        array: WarpArrayModel,
        diagnostics_text: str = "",
        jobs: Optional[int] = None,
        link_cache: Optional["LinkCache"] = None,
        stats: Optional[Phase4Stats] = None,
    ):
        self.parsed = parsed
        self.array = array
        self.diagnostics_text = diagnostics_text
        self.jobs = jobs if jobs is not None else default_phase4_jobs()
        if self.jobs < 1:
            raise ValueError(f"jobs must be positive, got {self.jobs}")
        self.link_cache = link_cache
        self.stats = stats if stats is not None else Phase4Stats()
        self.stats.jobs = self.jobs
        self._sections = {s.name: s for s in parsed.module.sections}
        self._futures: Dict[str, object] = {}
        self._executor: Optional[ThreadPoolExecutor] = None
        self._taint_reason: Optional[str] = None

    # -- irregularity handling ----------------------------------------

    def _taint(self, reason: str) -> None:
        if self._taint_reason is None:
            self._taint_reason = reason

    @staticmethod
    def _combined_clean(combined: "CombinedSection") -> bool:
        return not any(
            getattr(report, "poisoned", 0) or getattr(report, "failed", 0)
            for report in combined.reports
        )

    # -- module tier ---------------------------------------------------

    def _module_key(self, combined: Dict[str, "CombinedSection"]) -> str:
        from ..cache.link_store import module_link_key

        material = [
            (
                section.name,
                section.first_cell,
                section.last_cell,
                combined[section.name].payload_digests,
            )
            for section in self.parsed.module.sections
        ]
        return module_link_key(
            self.parsed.module.name,
            material,
            self.diagnostics_text,
            self.array.cell.data_memory_words,
            self.array.cell_count,
        )

    def lookup_module(
        self, combined: Dict[str, "CombinedSection"]
    ) -> Optional[DownloadModule]:
        """Whole-module cache probe; requires every section combined.

        Only clean modules are eligible: anything touched by poison
        isolation goes through the sequential oracle instead.
        """
        if self.link_cache is None:
            return None
        try:
            for section in self.parsed.module.sections:
                if section.name not in combined:
                    return None
                if not self._combined_clean(combined[section.name]):
                    return None
                self.array.validate_section_range(
                    section.first_cell, section.last_cell
                )
            module = self.link_cache.modules.get(self._module_key(combined))
        except Exception as exc:  # noqa: BLE001 - probe must never fail
            self._taint(f"module cache probe failed: {exc!r}")
            return None
        if module is None:
            return None
        self.stats.mode = "cached"
        self.stats.module_cache_hit = True
        return module

    # -- section tier --------------------------------------------------

    def section_ready(self, combined: "CombinedSection") -> None:
        """Submit one recombined section's link job (non-blocking)."""
        if self._taint_reason is not None:
            return
        section = self._sections.get(combined.section_name)
        if section is None:
            self._taint(f"unknown section {combined.section_name!r}")
            return
        if combined.section_name in self._futures:
            self._taint(f"duplicate section {combined.section_name!r}")
            return
        if not self._combined_clean(combined):
            self._taint(
                f"section {combined.section_name!r} has poisoned or "
                f"failed functions"
            )
            return
        try:
            self.array.validate_section_range(
                section.first_cell, section.last_cell
            )
        except Exception as exc:  # noqa: BLE001 - canonical error on fallback
            self._taint(f"range validation: {exc}")
            return
        if self._executor is None:
            self._executor = ThreadPoolExecutor(
                max_workers=self.jobs, thread_name_prefix="warpcc-phase4"
            )
        self._futures[combined.section_name] = self._executor.submit(
            self._link_one, section, combined
        )

    def _link_one(self, section: ast.Section, combined: "CombinedSection"):
        """One link job: section-cache probe, assembly top-up, link."""
        key = None
        if self.link_cache is not None:
            from ..cache.link_store import section_link_key

            key = section_link_key(
                section.name,
                section.first_cell,
                section.last_cell,
                combined.payload_digests,
                self.array.cell.data_memory_words,
            )
            program = self.link_cache.sections.get(key)
            if program is not None:
                return program, True, 0.0, 0.0
        preassembled = dict(combined.assembled)
        start = time.perf_counter()
        for obj in combined.objects:
            ready = preassembled.get(obj.name)
            if ready is not None and not _assembly_matches(ready, obj):
                ready = None
            if ready is None:
                preassembled[obj.name] = assemble_function(obj)
        assembled_at = time.perf_counter()
        program = link_section(
            section.name,
            combined.objects,
            self.array.cell,
            preassembled=preassembled,
        )
        linked_at = time.perf_counter()
        if key is not None:
            self.link_cache.sections.put(key, program)
        return (
            program,
            False,
            assembled_at - start,
            linked_at - assembled_at,
        )

    # -- completion ----------------------------------------------------

    def _work_model(self, combined: Dict[str, "CombinedSection"]) -> Tuple[int, int]:
        """Fill the deterministic work model; identical on every path."""
        self.stats.section_assembly_work = []
        self.stats.section_link_work = []
        tail = 0
        for section in self.parsed.module.sections:
            objs = combined[section.name].objects
            self.stats.section_assembly_work.append(
                sum(assembly_work_units(o) for o in objs)
            )
            self.stats.section_link_work.append(link_work_units(objs))
            tail += (section.last_cell - section.first_cell + 1) + 1
        self.stats.tail_work = tail
        return (
            sum(self.stats.section_assembly_work),
            sum(self.stats.section_link_work),
        )

    def _shutdown(self) -> None:
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None

    def finish(
        self,
        combined: Dict[str, "CombinedSection"],
        cached_module: Optional[DownloadModule] = None,
    ) -> Tuple[DownloadModule, int, int]:
        """Gather link jobs and build the module; returns the same
        ``(module, assembly_work, link_work)`` triple as the sequential
        :func:`phase4_link_and_download`."""
        try:
            assembly_work, link_work = self._work_model(combined)
            if cached_module is not None:
                return cached_module, assembly_work, link_work
            reason = self._taint_reason
            if reason is None:
                try:
                    module = self._gather(combined)
                    if self.stats.mode != "cached":
                        self.stats.mode = "parallel"
                    return module, assembly_work, link_work
                except Exception as exc:  # noqa: BLE001 - fall back wholesale
                    reason = f"{type(exc).__name__}: {exc}"
            # Sequential fallback: the canonical oracle re-links (or
            # re-raises the canonical first error).
            self.stats.mode = "fallback"
            self.stats.fallback_reason = reason
            objects = {
                name: section.objects for name, section in combined.items()
            }
            return phase4_link_and_download(
                self.parsed, objects, self.array, self.diagnostics_text
            )
        finally:
            self._shutdown()

    def _gather(self, combined: Dict[str, "CombinedSection"]) -> DownloadModule:
        section_cells: Dict[str, Tuple[int, int]] = {}
        programs: Dict[str, CellProgram] = {}
        clean = True
        for section in self.parsed.module.sections:
            self.array.validate_section_range(
                section.first_cell, section.last_cell
            )
            section_cells[section.name] = (
                section.first_cell,
                section.last_cell,
            )
            future = self._futures.get(section.name)
            if future is not None:
                outcome = future.result()
            else:
                # A section the driver never announced (barrier-style
                # callers): link it inline on the gathering thread.
                if not self._combined_clean(combined[section.name]):
                    raise SectionTaintedError(section.name)
                outcome = self._link_one(section, combined[section.name])
            program, hit, assembly_s, link_s = outcome
            clean = clean and self._combined_clean(combined[section.name])
            if hit:
                self.stats.link_cache_hits += 1
            else:
                self.stats.link_cache_misses += 1
            self.stats.assembly_ms += assembly_s * 1000.0
            self.stats.link_ms += link_s * 1000.0
            programs[section.name] = program
        module = build_download_module(
            self.parsed.module.name, section_cells, programs,
            self.diagnostics_text,
        )
        build_io_driver(module.cell_programs)  # validates I/O wiring
        if self.link_cache is not None and clean:
            try:
                self.link_cache.modules.put(self._module_key(combined), module)
            except Exception:  # noqa: BLE001 - cache write is best-effort
                pass
        return module


class SectionTaintedError(Exception):
    """A poisoned/failed section reached the parallel back end."""

    def __init__(self, section_name: str):
        super().__init__(
            f"section {section_name!r} has poisoned or failed functions"
        )


def phase4_parallel(
    parsed: ParsedProgram,
    combined: Dict[str, "CombinedSection"],
    array: WarpArrayModel,
    diagnostics_text: str = "",
    jobs: Optional[int] = None,
    link_cache: Optional["LinkCache"] = None,
    stats: Optional[Phase4Stats] = None,
) -> Tuple[DownloadModule, int, int]:
    """Barrier-style parallel + incremental phase 4.

    ``combined`` maps section name -> recombined section (what
    ``StreamingSectionCombiner.finalize`` returns).  Probes the module
    cache, else links every section concurrently on ``jobs`` threads.
    Output is bit-identical to :func:`phase4_link_and_download`; any
    irregularity falls back to it.  Returns (module, assembly work,
    link work).
    """
    runner = Phase4Runner(
        parsed,
        array,
        diagnostics_text,
        jobs=jobs,
        link_cache=link_cache,
        stats=stats,
    )
    cached = runner.lookup_module(combined)
    if cached is None:
        for section in parsed.module.sections:
            ready = combined.get(section.name)
            if ready is not None:
                runner.section_ready(ready)
    return runner.finish(combined, cached_module=cached)
