"""Serial / parallel / warm-pool equivalence over the paper's S_n grid.

The §4.1 synthetic workload matrix (every size class × function count)
is the paper's own benchmark surface; these tests assert the bit-identity
invariant holds on all of it.  Larger entries are thinned (the compile
time of huge×8 alone is tens of seconds) but *every size class* appears,
and the warm multiprocess pool — the one backend with real IPC — is
shared module-wide so its startup cost is paid once.
"""

import pytest

from repro.driver.master import ParallelCompiler
from repro.driver.sequential import SequentialCompiler
from repro.parallel.local import SerialBackend
from repro.workloads.synthetic import all_synthetic_programs

# Keep the big size classes to their smallest function counts: coverage
# of every class without minutes of compile time.
_MAX_FUNCTIONS = {"tiny": 8, "small": 8, "medium": 2, "large": 1, "huge": 1}

MATRIX = [
    pytest.param(size, n, source, id=f"{size}x{n}")
    for size, n, source in all_synthetic_programs()
    if n <= _MAX_FUNCTIONS[size]
]


@pytest.fixture(scope="module")
def warm_pool():
    from repro.parallel.warm_pool import WarmPoolBackend

    backend = WarmPoolBackend(max_workers=2)
    yield backend
    backend.shutdown()


@pytest.fixture(scope="module")
def sequential_digests():
    cache = {}

    def digest_of(source: str) -> str:
        if source not in cache:
            cache[source] = SequentialCompiler().compile(source).digest
        return cache[source]

    return digest_of


class TestEquivalenceMatrix:
    @pytest.mark.parametrize("size,n,source", MATRIX)
    def test_parallel_matches_sequential(
        self, size, n, source, sequential_digests
    ):
        parallel = ParallelCompiler(backend=SerialBackend()).compile(source)
        assert parallel.digest == sequential_digests(source)

    @pytest.mark.parametrize("size,n,source", MATRIX)
    def test_warm_pool_matches_sequential(
        self, size, n, source, warm_pool, sequential_digests
    ):
        result = ParallelCompiler(backend=warm_pool).compile(source)
        assert result.digest == sequential_digests(source)

    def test_every_size_class_is_covered(self):
        covered = {size for size, _, _ in all_synthetic_programs()}
        tested = {p.values[0] for p in MATRIX}
        assert tested == covered
