"""Generic iterative dataflow framework over basic blocks.

Solves forward and backward set problems with gen/kill transfer functions
using a worklist.  Sets are Python frozensets of hashable facts (virtual
registers for liveness, (register, definition-site) pairs for reaching
definitions).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, FrozenSet, Hashable, List

from ..ir.cfg import FunctionIR

Fact = Hashable
FactSet = FrozenSet[Fact]


@dataclass
class BlockFacts:
    """Solution at block granularity: facts on entry and on exit."""

    entry: Dict[str, FactSet]
    exit: Dict[str, FactSet]


def solve_forward(
    function: FunctionIR,
    gen: Dict[str, FactSet],
    kill: Dict[str, FactSet],
    boundary: FactSet = frozenset(),
) -> BlockFacts:
    """Forward may-analysis: out = gen ∪ (in − kill), in = ∪ preds' out."""
    preds = function.predecessors()
    names = [b.name for b in function.blocks]
    entry: Dict[str, FactSet] = {n: frozenset() for n in names}
    exit_: Dict[str, FactSet] = {n: frozenset() for n in names}
    entry[function.entry.name] = boundary

    worklist: List[str] = list(names)
    in_worklist = set(worklist)
    while worklist:
        name = worklist.pop(0)
        in_worklist.discard(name)
        if name != function.entry.name:
            merged: FactSet = frozenset().union(
                *(exit_[p] for p in preds[name])
            ) if preds[name] else frozenset()
            entry[name] = merged
        new_exit = gen[name] | (entry[name] - kill[name])
        if new_exit != exit_[name]:
            exit_[name] = new_exit
            for block in function.blocks:
                if block.name == name:
                    for succ in block.successors():
                        if succ not in in_worklist:
                            worklist.append(succ)
                            in_worklist.add(succ)
    return BlockFacts(entry=entry, exit=exit_)


def solve_backward(
    function: FunctionIR,
    gen: Dict[str, FactSet],
    kill: Dict[str, FactSet],
    boundary: FactSet = frozenset(),
) -> BlockFacts:
    """Backward may-analysis: in = gen ∪ (out − kill), out = ∪ succs' in.

    ``boundary`` seeds the out-set of every exit block (blocks with no
    successors) — e.g. registers observable after return (none, normally).
    """
    names = [b.name for b in function.blocks]
    block_map = function.block_map()
    preds = function.predecessors()
    entry: Dict[str, FactSet] = {n: frozenset() for n in names}
    exit_: Dict[str, FactSet] = {n: frozenset() for n in names}
    for name in names:
        if not block_map[name].successors():
            exit_[name] = boundary

    worklist: List[str] = list(reversed(names))
    in_worklist = set(worklist)
    while worklist:
        name = worklist.pop(0)
        in_worklist.discard(name)
        succs = block_map[name].successors()
        if succs:
            exit_[name] = frozenset().union(*(entry[s] for s in succs))
        new_entry = gen[name] | (exit_[name] - kill[name])
        if new_entry != entry[name]:
            entry[name] = new_entry
            for pred in preds[name]:
                if pred not in in_worklist:
                    worklist.append(pred)
                    in_worklist.add(pred)
    return BlockFacts(entry=entry, exit=exit_)
