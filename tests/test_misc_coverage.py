"""Corner cases across modules: CFG simplification guards, queue-pressure
execution, DES partial runs, phase-4 error paths, stats plumbing."""

import pytest

from repro.asmlink.download import build_download_module
from repro.asmlink.iodriver import build_io_driver
from repro.cluster.events import Simulator
from repro.codegen.schedule import schedule_block
from repro.codegen.select import SelectedBlock
from repro.ir.builder import IRBuilder
from repro.ir.cfg import FunctionIR
from repro.ir.printer import print_module
from repro.ir.values import IR_INT
from repro.machine.warp_array import WarpArrayModel
from repro.machine.warp_cell import WarpCellModel
from repro.opt.pass_manager import PassStats
from repro.opt.simplify import simplify_control_flow
from repro.driver.sequential import SequentialCompiler
from repro.warpsim.array_runner import run_module

from helpers import lower_ok, wrap_function


class TestSimplifyGuards:
    def test_empty_infinite_jump_loop_left_alone(self):
        fn = FunctionIR(name="spin", section_name="s")
        b = IRBuilder(fn)
        entry = b.new_block("entry")
        spin = b.new_block("spin")
        b.set_block(entry)
        b.jmp(spin)
        b.set_block(spin)
        b.jmp(spin)  # empty infinite loop: threading must not recurse
        fn.validate()
        simplify_control_flow(fn)
        fn.validate()
        assert any(block.name == "spin" for block in fn.blocks)

    def test_branch_with_equal_targets_becomes_jump(self):
        from repro.ir.instructions import Opcode

        fn = FunctionIR(name="t", section_name="s")
        b = IRBuilder(fn)
        entry = b.new_block("entry")
        target = b.new_block("target")
        b.set_block(entry)
        cond = b.li(1, IR_INT)
        b.br(cond, target, target)
        b.set_block(target)
        b.ret()
        simplify_control_flow(fn)
        assert fn.blocks[0].terminator.op is not Opcode.BR


class TestSchedulerEdges:
    def test_empty_block_schedules_to_zero_bundles(self):
        result = schedule_block(SelectedBlock(label="empty", ops=[]))
        assert result.block.bundles == []
        assert result.work_units == 0


class TestQueuePressure:
    def test_tiny_queue_capacity_still_correct(self):
        """With capacity-1 queues the producer stalls but nothing is lost."""
        source = """
module backpressure
section s (cells 0..1)
  function main()
  var v: float; k: int;
  begin
    for k := 1 to 6 do receive(v); send(v + 1.0); end;
  end
end
end
"""
        cell = WarpCellModel(queue_capacity=1)
        array = WarpArrayModel(cell_count=2, cell=cell)
        result = SequentialCompiler(array=array).compile(source)
        outcome = run_module(result.download, [float(i) for i in range(6)],
                             array=array)
        assert outcome.output_floats() == [float(i) + 2.0 for i in range(6)]
        assert any(
            stats.stall_cycles > 0 for stats in outcome.cell_stats.values()
        )

    def test_leftover_input_reported(self):
        source = """
module eats_two
section s (cells 0..0)
  function main()
  var v: float;
  begin receive(v); receive(v); send(v); end
end
end
"""
        result = SequentialCompiler().compile(source)
        outcome = run_module(result.download, [1.0, 2.0, 3.0, 4.0])
        assert outcome.outputs == [2.0]
        assert outcome.leftover_input == 2


class TestSimulatorPartialRun:
    def test_run_until_stops_early(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, lambda: fired.append(1))
        sim.schedule(10.0, lambda: fired.append(2))
        sim.run(until=5.0)
        assert fired == [1]
        assert sim.pending_events == 1
        sim.run()
        assert fired == [1, 2]


class TestPhase4Errors:
    def test_io_driver_requires_cells(self):
        with pytest.raises(ValueError):
            build_io_driver({})

    def test_download_missing_section_program(self):
        with pytest.raises(KeyError, match="no linked program"):
            build_download_module("m", {"s": (0, 0)}, {})


class TestPrinterAndStats:
    def test_print_module_lists_sections_and_functions(self):
        ir = lower_ok(
            wrap_function(
                "function f(x: float) : float begin return x; end\n"
                "function g() begin end"
            )
        )
        text = print_module(ir)
        assert "module m" in text
        assert "func s.f" in text
        assert "func s.g" in text
        assert "cells 0..0" in text

    def test_pass_stats_merge(self):
        a, b = PassStats(), PassStats()
        a.record("p", changed=2, visited=10)
        b.record("p", changed=3, visited=20)
        b.record("q", changed=1, visited=5)
        b.rounds = 2
        a.merge(b)
        assert a.changes["p"] == 5
        assert a.instructions_visited == {"p": 30, "q": 5}
        assert a.rounds == 2
        assert a.total_changes == 6
