"""Client for the compile service's JSON-lines protocol.

``warpcc submit`` and ``warpcc status`` are thin wrappers around
:class:`ServiceClient`.  Each request opens one connection (requests
are independent; the server is threaded), sends one JSON line, and
reads reply lines — ``wait`` with streaming yields per-function
progress events before the final job document.
"""

from __future__ import annotations

import json
import os
import socket
from typing import Callable, Iterator, Optional, Tuple

#: default service address, overridable per-invocation with --connect
ADDRESS_ENV = "WARPCC_SERVICE"


class ServiceError(Exception):
    """The service replied ``ok: false`` (or the wire broke)."""

    def __init__(self, message: str, reason: str = "error"):
        super().__init__(message)
        self.reason = reason


def parse_address(address: str) -> Tuple[str, int]:
    host, _, port = address.rpartition(":")
    if not host or not port:
        raise ValueError(
            f"service address must be HOST:PORT, got {address!r}"
        )
    return host, int(port)


def resolve_address(address: Optional[str]) -> str:
    """Explicit address, else $WARPCC_SERVICE, else an error."""
    if address:
        return address
    from_env = os.environ.get(ADDRESS_ENV)
    if from_env:
        return from_env
    raise ServiceError(
        "no service address: pass --connect HOST:PORT or set "
        f"${ADDRESS_ENV} (the address 'warpcc serve' printed)",
        reason="no-address",
    )


class ServiceClient:
    """Talks to one ``warpcc serve`` endpoint.

    The initial connect retries with capped exponential backoff +
    jitter: ``warpcc submit`` routinely races ``warpcc serve`` binding
    its socket (scripted startups, CI), and a connection refused inside
    that window is a timing accident, not an answer.  Only refused/reset
    connects are retried; after the budget the last error propagates
    unchanged.
    """

    def __init__(
        self,
        address: str,
        timeout: Optional[float] = 30.0,
        connect_attempts: int = 6,
        connect_backoff: float = 0.05,
    ):
        self.host, self.port = parse_address(address)
        self.timeout = timeout
        self.connect_attempts = max(1, connect_attempts)
        self.connect_backoff = connect_backoff

    # -- wire ----------------------------------------------------------

    def _connect(self) -> socket.socket:
        from ..fabric.wire import connect_with_backoff

        return connect_with_backoff(
            self.host,
            self.port,
            attempts=self.connect_attempts,
            base=self.connect_backoff,
            timeout=self.timeout,
        )

    def _request_lines(self, payload: dict) -> Iterator[dict]:
        """Send one request; yield each reply line as a dict."""
        with self._connect() as sock:
            with sock.makefile("rwb") as stream:
                stream.write(
                    (json.dumps(payload) + "\n").encode("utf-8")
                )
                stream.flush()
                sock.shutdown(socket.SHUT_WR)
                for raw in stream:
                    line = raw.strip()
                    if line:
                        yield json.loads(line.decode("utf-8"))

    def _request(self, payload: dict) -> dict:
        """Send one request; return the single (final) reply."""
        reply = None
        for reply in self._request_lines(payload):
            pass
        if reply is None:
            raise ServiceError("connection closed without a reply")
        return self._checked(reply)

    @staticmethod
    def _checked(reply: dict) -> dict:
        if not reply.get("ok"):
            raise ServiceError(
                reply.get("error", "service error"),
                reason=reply.get("reason", "error"),
            )
        return reply

    # -- operations ----------------------------------------------------

    def ping(self) -> dict:
        return self._request({"op": "ping"})

    def submit(
        self,
        source: str,
        *,
        tenant: str = "default",
        filename: str = "<input>",
        priority: str = "normal",
        opt_level: int = 2,
        cells: int = 10,
    ) -> str:
        """Submit a module; returns the job id (raises
        :class:`ServiceError` with the admission reason on rejection)."""
        reply = self._request(
            {
                "op": "submit",
                "source": source,
                "tenant": tenant,
                "filename": filename,
                "priority": priority,
                "opt_level": opt_level,
                "cells": cells,
            }
        )
        return reply["job"]

    def wait(
        self,
        job_id: str,
        *,
        stream: bool = False,
        on_event: Optional[Callable[[dict], None]] = None,
        timeout: Optional[float] = None,
    ) -> dict:
        """Block until the job is terminal; returns its final document.

        With ``stream=True`` every lifecycle event ("started",
        "function_done", ...) is passed to ``on_event`` as it happens —
        the per-function progress feed ``run_tasks_streaming`` gives the
        in-process master, re-exported over the wire.
        """
        request = {"op": "wait", "job": job_id, "stream": stream}
        if timeout is not None:
            request["timeout"] = timeout
        final = None
        for reply in self._request_lines(request):
            self._checked(reply)
            if "event" in reply:
                if on_event is not None:
                    on_event(reply["event"])
                continue
            final = reply
        if final is None:
            raise ServiceError("connection closed before job finished")
        return final["job"]

    def submit_and_wait(self, source: str, **kwargs) -> dict:
        on_event = kwargs.pop("on_event", None)
        timeout = kwargs.pop("timeout", None)
        job_id = self.submit(source, **kwargs)
        return self.wait(
            job_id,
            stream=on_event is not None,
            on_event=on_event,
            timeout=timeout,
        )

    def status(
        self,
        job_id: Optional[str] = None,
        *,
        gantt: bool = False,
        width: int = 72,
    ) -> dict:
        request = {"op": "status", "gantt": gantt, "width": width}
        if job_id is not None:
            request["job"] = job_id
        return self._request(request)

    def watch_update(
        self,
        source: str,
        *,
        watch: str = "default",
        filename: str = "<watch>",
        opt_level: int = 2,
        cells: int = 10,
    ) -> dict:
        """Stream one watch-mode edit; the server fingerprints the
        module, diffs it against this watch key's previous snapshot,
        and (capacity permitting) precompiles the changed functions as
        a speculative batch-priority job.  Returns the outcome document
        ({"dirty", "functions", "job", "superseded", "reason", ...})."""
        return self._request(
            {
                "op": "watch",
                "source": source,
                "watch": watch,
                "filename": filename,
                "opt_level": opt_level,
                "cells": cells,
            }
        )

    def watch_status(self) -> dict:
        """Speculation counters ({"enabled", "stats"})."""
        return self._request({"op": "watch-status"})

    def cancel(self, job_id: str) -> bool:
        return self._request({"op": "cancel", "job": job_id})["cancelled"]

    def shutdown(self, drain: bool = True) -> dict:
        return self._request({"op": "shutdown", "drain": drain})
