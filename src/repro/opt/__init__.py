"""Optimizer: local optimizations, dataflow analyses, and loop transforms."""

from .copyprop import propagate_copies
from .cse import eliminate_common_subexpressions
from .dataflow import (
    BlockFacts,
    facts_of,
    mask_of,
    solve_backward,
    solve_backward_masks,
    solve_backward_sets,
    solve_forward,
    solve_forward_masks,
    solve_forward_sets,
    unpack_solution,
)
from .dce import eliminate_dead_code
from .dependence import (
    ANTI,
    DependenceEdge,
    DependenceGraph,
    IO,
    MEMORY,
    OUTPUT,
    Subscript,
    TRUE,
    build_dependence_graph,
    classify_subscript,
    find_induction_register,
)
from .fold import fold_constants
from .gconst import propagate_constants_globally
from .inline import inline_calls_in_function, inline_calls_in_module
from .licm import hoist_loop_invariants
from .liveness import block_use_def, iterate_live_out, live_variables
from .pass_manager import PassManager, PassStats
from .reaching import ReachingDefinitions, reaching_definitions
from .simplify import simplify_control_flow
from .unroll import unroll_constant_loops

__all__ = [
    "ANTI",
    "BlockFacts",
    "DependenceEdge",
    "DependenceGraph",
    "IO",
    "MEMORY",
    "OUTPUT",
    "PassManager",
    "PassStats",
    "ReachingDefinitions",
    "Subscript",
    "TRUE",
    "block_use_def",
    "build_dependence_graph",
    "classify_subscript",
    "eliminate_common_subexpressions",
    "eliminate_dead_code",
    "facts_of",
    "find_induction_register",
    "fold_constants",
    "hoist_loop_invariants",
    "inline_calls_in_function",
    "inline_calls_in_module",
    "iterate_live_out",
    "live_variables",
    "mask_of",
    "propagate_constants_globally",
    "propagate_copies",
    "reaching_definitions",
    "simplify_control_flow",
    "solve_backward",
    "solve_backward_masks",
    "solve_backward_sets",
    "solve_forward",
    "solve_forward_masks",
    "solve_forward_sets",
    "unpack_solution",
    "unroll_constant_loops",
]
