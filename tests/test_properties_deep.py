"""Deeper property-based tests: allocator soundness, dominators, loops."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.codegen.regalloc import allocate_registers
from repro.ir.builder import IRBuilder
from repro.ir.cfg import FunctionIR
from repro.ir.dominators import compute_dominators
from repro.ir.instructions import Opcode
from repro.ir.loops import find_loops
from repro.ir.values import IR_INT
from repro.machine.warp_cell import WarpCellModel
from repro.opt.liveness import iterate_live_out, live_variables
from repro.opt.pass_manager import PassManager

from helpers import parse_ok, single_function_ir
from test_properties import random_program


# ---------------------------------------------------------------------------
# Register allocation: no two simultaneously-live values share a register
# ---------------------------------------------------------------------------


@settings(max_examples=25, deadline=None)
@given(source=random_program())
def test_allocator_never_aliases_live_values(source):
    module, sema = parse_ok(source)
    from repro.ir.lowering import lower_module

    ir = lower_module(module, sema)
    for fn in ir.all_functions():
        PassManager(2).run(fn)
        allocation = allocate_registers(fn, WarpCellModel())
        facts = live_variables(fn)
        for block in fn.blocks:
            for _instr, live_after in iterate_live_out(
                block, facts.exit[block.name]
            ):
                live = [r for r in live_after if r in allocation.assignment]
                mapped = {allocation.assignment[r] for r in live}
                assert len(mapped) == len(live), (
                    f"aliased registers in {fn.name} at block {block.name}"
                )


@settings(max_examples=15, deadline=None)
@given(source=random_program())
def test_allocator_sound_under_extreme_pressure(source):
    """Even with 4 registers per bank (forcing heavy spills), allocation
    must terminate and remain alias-free."""
    module, sema = parse_ok(source)
    from repro.ir.lowering import lower_module

    tight = WarpCellModel(int_registers=6, float_registers=4)
    ir = lower_module(module, sema)
    for fn in ir.all_functions():
        PassManager(2).run(fn)
        allocation = allocate_registers(fn, tight)
        for preg in allocation.assignment.values():
            limit = 6 if preg.bank == "i" else 4
            assert preg.index < limit


# ---------------------------------------------------------------------------
# Dominators: checked against the brute-force removal definition
# ---------------------------------------------------------------------------


@st.composite
def random_cfg(draw):
    """A random function CFG with 2-8 blocks of empty bodies."""
    n = draw(st.integers(2, 8))
    fn = FunctionIR(name="g", section_name="s")
    builder = IRBuilder(fn)
    blocks = [builder.new_block(f"b{i}") for i in range(n)]
    for i, block in enumerate(blocks):
        builder.set_block(block)
        kind = draw(st.integers(0, 2))
        if kind == 0 or i == n - 1:
            builder.ret()
        elif kind == 1:
            target = draw(st.integers(0, n - 1))
            builder.jmp(blocks[target])
        else:
            cond = builder.li(1, IR_INT)
            t1 = draw(st.integers(0, n - 1))
            t2 = draw(st.integers(0, n - 1))
            builder.br(cond, blocks[t1], blocks[t2])
    fn.remove_unreachable_blocks()
    fn.validate()
    return fn


def _reachable_without(fn: FunctionIR, removed: str) -> set:
    """Blocks reachable from entry without passing through ``removed``."""
    block_map = fn.block_map()
    if fn.entry.name == removed:
        return set()
    seen = {fn.entry.name}
    stack = [fn.entry.name]
    while stack:
        name = stack.pop()
        for succ in block_map[name].successors():
            if succ != removed and succ not in seen:
                seen.add(succ)
                stack.append(succ)
    return seen


@settings(max_examples=200, deadline=None)
@given(fn=random_cfg())
def test_dominators_match_bruteforce_removal(fn):
    dom = compute_dominators(fn)
    names = [b.name for b in fn.blocks]
    for a in names:
        unreachable_without_a = set(names) - _reachable_without(fn, a)
        for b in names:
            # a dominates b iff removing a cuts b from the entry.
            expected = b in unreachable_without_a or a == b
            assert dom.dominates(a, b) == expected, (a, b)


@settings(max_examples=200, deadline=None)
@given(fn=random_cfg())
def test_loops_have_dominating_headers(fn):
    dom = compute_dominators(fn)
    nest = find_loops(fn)
    for loop in nest.all_loops():
        assert loop.header in loop.blocks
        for name in loop.blocks:
            assert dom.dominates(loop.header, name)


@settings(max_examples=200, deadline=None)
@given(fn=random_cfg())
def test_loop_bodies_reach_back_to_header(fn):
    """Every block of a natural loop can reach the header within it."""
    block_map = fn.block_map()
    nest = find_loops(fn)
    for loop in nest.all_loops():
        for start in loop.blocks:
            seen = {start}
            stack = [start]
            found = start == loop.header
            while stack and not found:
                name = stack.pop()
                for succ in block_map[name].successors():
                    if succ == loop.header:
                        found = True
                        break
                    if succ in loop.blocks and succ not in seen:
                        seen.add(succ)
                        stack.append(succ)
            assert found, f"{start} cannot reach header {loop.header}"


# ---------------------------------------------------------------------------
# Digest and printer determinism
# ---------------------------------------------------------------------------


@settings(max_examples=15, deadline=None)
@given(source=random_program())
def test_ir_printer_deterministic(source):
    from repro.ir.printer import print_module
    from repro.ir.lowering import lower_module

    module, sema = parse_ok(source)
    first = print_module(lower_module(module, sema))
    second = print_module(lower_module(module, sema))
    assert first == second
