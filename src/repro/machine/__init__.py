"""Warp machine model: cells, functional units, the array."""

from .resources import FUClass, OpSpec, PhysReg
from .warp_array import WarpArrayModel, default_array
from .warp_cell import WarpCellModel

__all__ = [
    "FUClass",
    "OpSpec",
    "PhysReg",
    "WarpArrayModel",
    "WarpCellModel",
    "default_array",
]
