"""Differential fuzzing for the parallel compiler.

The paper's parallelization argument rests on one invariant: compiling
each function independently and recombining must produce the *same*
download module as the sequential compiler.  Every subsystem added on
top of that — warm pool, artifact cache, streaming recombination,
supervision, chaos injection — multiplies the number of pipelines that
must preserve it.  This package checks the invariant mechanically:

- :mod:`repro.fuzz.generator` — seeded random program generator
  emitting valid Warp modules from an explicit RNG;
- :mod:`repro.fuzz.oracle` — differential oracle compiling one module
  through every pipeline variant and classifying any disagreement;
- :mod:`repro.fuzz.reduce` — delta-debugging minimizer shrinking a
  failing module into a permanent corpus reproducer.

Entry points: ``warpcc fuzz`` (CLI), :func:`run_fuzz_campaign`, and the
corpus regression tests in ``tests/test_corpus.py``.
"""

from .generator import (
    GeneratorConfig,
    GeneratedProgram,
    config_for_size_class,
    generate_program,
)
from .oracle import (
    DifferentialOracle,
    Mismatch,
    OracleConfig,
    OracleReport,
    run_fuzz_campaign,
)
from .reduce import DeltaReducer, ReductionResult, write_corpus_entry

__all__ = [
    "DeltaReducer",
    "DifferentialOracle",
    "GeneratedProgram",
    "GeneratorConfig",
    "Mismatch",
    "OracleConfig",
    "OracleReport",
    "ReductionResult",
    "config_for_size_class",
    "generate_program",
    "run_fuzz_campaign",
    "write_corpus_entry",
]
