"""CFG analyses: dominators, natural loops, loop nests."""

import pytest

from repro.ir.builder import IRBuilder
from repro.ir.cfg import FunctionIR
from repro.ir.dominators import compute_dominators
from repro.ir.instructions import Opcode
from repro.ir.loops import find_loops, is_pipelinable, loop_nest_weight
from repro.ir.values import Const, IR_INT

from helpers import single_function_ir, wrap_function


def diamond_function() -> FunctionIR:
    """entry -> (left | right) -> join."""
    fn = FunctionIR(name="d", section_name="s")
    b = IRBuilder(fn)
    entry = b.new_block("entry")
    left = b.new_block("left")
    right = b.new_block("right")
    join = b.new_block("join")
    b.set_block(entry)
    cond = b.li(1, IR_INT)
    b.br(cond, left, right)
    b.set_block(left)
    b.jmp(join)
    b.set_block(right)
    b.jmp(join)
    b.set_block(join)
    b.ret()
    fn.validate()
    return fn


class TestDominators:
    def test_entry_dominates_everything(self):
        fn = diamond_function()
        dom = compute_dominators(fn)
        for block in fn.blocks:
            assert dom.dominates("entry", block.name)

    def test_branch_arms_do_not_dominate_join(self):
        dom = compute_dominators(diamond_function())
        assert not dom.dominates("left", "join")
        assert not dom.dominates("right", "join")
        assert dom.idom["join"] == "entry"

    def test_self_domination(self):
        dom = compute_dominators(diamond_function())
        assert dom.dominates("left", "left")

    def test_loop_header_dominates_body(self):
        fn = single_function_ir(
            wrap_function(
                "function f()\nvar i: int;\n"
                "begin for i := 0 to 3 do i := i; end; end"
            )
        )
        dom = compute_dominators(fn)
        assert dom.dominates("for.header", "for.body")
        assert not dom.dominates("for.body", "for.header")

    def test_dominator_chain(self):
        fn = diamond_function()
        dom = compute_dominators(fn)
        assert dom.dominators_of("join") == ["join", "entry"]


class TestLoops:
    def test_single_loop_detected(self):
        fn = single_function_ir(
            wrap_function(
                "function f()\nvar i: int;\n"
                "begin for i := 0 to 3 do i := i; end; end"
            )
        )
        nest = find_loops(fn)
        assert len(nest.all_loops()) == 1
        loop = nest.all_loops()[0]
        assert loop.header == "for.header"
        assert "for.body" in loop

    def test_nested_loops(self):
        fn = single_function_ir(
            wrap_function(
                "function f()\nvar i, j: int;\nbegin\n"
                "for i := 0 to 3 do\n"
                "  for j := 0 to 3 do j := j; end;\n"
                "end;\nend"
            )
        )
        nest = find_loops(fn)
        loops = nest.all_loops()
        assert len(loops) == 2
        assert nest.max_depth() == 2
        inner = [l for l in loops if l.is_innermost()]
        assert len(inner) == 1
        assert inner[0].depth == 2

    def test_sequential_loops_are_siblings(self):
        fn = single_function_ir(
            wrap_function(
                "function f()\nvar i: int;\nbegin\n"
                "for i := 0 to 3 do i := i; end;\n"
                "for i := 0 to 3 do i := i; end;\nend"
            )
        )
        nest = find_loops(fn)
        assert len(nest.roots) == 2
        assert all(l.depth == 1 for l in nest.all_loops())

    def test_while_loop_detected(self):
        fn = single_function_ir(
            wrap_function(
                "function f(n: int)\nbegin while n > 0 do n := n - 1; end; end"
            )
        )
        nest = find_loops(fn)
        assert len(nest.all_loops()) == 1

    def test_no_loops(self):
        fn = single_function_ir(wrap_function("function f() begin end"))
        assert find_loops(fn).all_loops() == []


class TestPipelinability:
    def _nest_of(self, body: str):
        fn = single_function_ir(wrap_function(body))
        return fn, find_loops(fn)

    def test_simple_counted_loop_is_pipelinable(self):
        fn, nest = self._nest_of(
            "function f()\nvar i: int; x: float;\n"
            "begin for i := 0 to 3 do x := x + 1.0; end; end"
        )
        loop = nest.all_loops()[0]
        assert is_pipelinable(fn, loop)

    def test_loop_with_if_not_pipelinable(self):
        fn, nest = self._nest_of(
            "function f()\nvar i: int; x: float;\nbegin\n"
            "for i := 0 to 3 do\n"
            "  if x > 0.0 then x := x - 1.0; end;\n"
            "end;\nend"
        )
        inner = nest.innermost_loops()[0]
        assert not is_pipelinable(fn, inner)

    def test_loop_with_call_not_pipelinable(self):
        from helpers import lower_ok

        ir = lower_ok(
            wrap_function(
                "function g() begin end\n"
                "function f()\nvar i: int;\n"
                "begin for i := 0 to 3 do g(); end; end"
            )
        )
        fn = ir.function_named("s", "f")
        nest = find_loops(fn)
        assert not is_pipelinable(fn, nest.all_loops()[0])

    def test_outer_loop_not_pipelinable(self):
        fn, nest = self._nest_of(
            "function f()\nvar i, j: int;\nbegin\n"
            "for i := 0 to 3 do\n"
            "  for j := 0 to 3 do j := j; end;\n"
            "end;\nend"
        )
        outer = [l for l in nest.all_loops() if not l.is_innermost()][0]
        assert not is_pipelinable(fn, outer)


class TestLoopWeight:
    def test_weight_grows_with_nesting(self):
        flat = single_function_ir(
            wrap_function(
                "function f()\nvar i: int;\n"
                "begin for i := 0 to 3 do i := i; end; end"
            )
        )
        nested = single_function_ir(
            wrap_function(
                "function f()\nvar i, j: int;\nbegin\n"
                "for i := 0 to 3 do\n"
                "  for j := 0 to 3 do j := j; end;\n"
                "end;\nend"
            )
        )
        assert loop_nest_weight(nested) > loop_nest_weight(flat)
