"""Register allocation: linear scan over the function's linearized IR.

Virtual registers get physical registers from the cell's two banks.  When
a bank is exhausted, the active interval that ends last is spilled to a
scratch region of the frame, its accesses are rewritten through
short-lived temporaries, and allocation restarts.  Allocation happens on
the IR, *before* scheduling; the scheduler then honors the anti and output
dependences that physical-register reuse introduces.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..ir.cfg import BasicBlock, FunctionIR
from ..ir.instructions import Instr, Opcode
from ..ir.values import Const, FrameArray, IR_FLOAT, IR_INT, VReg
from ..machine.resources import PhysReg
from ..machine.warp_cell import WarpCellModel
from ..opt.liveness import live_variables


class RegisterPressureError(Exception):
    """Raised when spilling cannot bring pressure under the bank size."""


@dataclass
class Interval:
    reg: VReg
    start: int
    end: int


@dataclass
class AllocationResult:
    """vreg -> physical register map plus spill bookkeeping."""

    assignment: Dict[VReg, PhysReg]
    spill_slots: int
    rounds: int
    work_units: int

    def reg_for(self, vreg: VReg) -> PhysReg:
        return self.assignment[vreg]


def allocate_registers(
    function: FunctionIR, cell: WarpCellModel, max_rounds: int = 12
) -> AllocationResult:
    """Allocate physical registers, spilling as needed (modifies IR)."""
    spill_slots = {"i": 0, "f": 0}
    work_units = 0
    for round_number in range(1, max_rounds + 1):
        intervals = _build_intervals(function)
        work_units += function.instruction_count() + len(intervals)
        assignment, spilled = _linear_scan(intervals, cell)
        if spilled is None:
            return AllocationResult(
                assignment=assignment,
                spill_slots=spill_slots["i"] + spill_slots["f"],
                rounds=round_number,
                work_units=work_units,
            )
        _rewrite_with_spill(function, spilled, spill_slots)
    raise RegisterPressureError(
        f"function {function.name!r} still over register pressure after "
        f"{max_rounds} spill rounds"
    )


def _build_intervals(function: FunctionIR) -> List[Interval]:
    """Conservative hole-free live intervals over the block layout order."""
    facts = live_variables(function)
    positions: Dict[VReg, Tuple[int, int]] = {}

    def extend(reg: VReg, pos: int) -> None:
        if reg in positions:
            lo, hi = positions[reg]
            positions[reg] = (min(lo, pos), max(hi, pos))
        else:
            positions[reg] = (pos, pos)

    pos = 0
    for reg in function.param_regs:
        extend(reg, 0)
    for block in function.blocks:
        block_start = pos
        for reg in facts.entry[block.name]:
            extend(reg, block_start)
        for instr in block.instructions:
            if instr.dest is not None:
                extend(instr.dest, pos)
            for reg in instr.uses():
                extend(reg, pos)
            pos += 1
        block_end = pos - 1 if pos > block_start else block_start
        for reg in facts.exit[block.name]:
            extend(reg, block_end)

    intervals = [Interval(reg, lo, hi) for reg, (lo, hi) in positions.items()]
    intervals.sort(key=lambda iv: (iv.start, iv.end, iv.reg.id))
    return intervals


def _linear_scan(
    intervals: List[Interval], cell: WarpCellModel
) -> Tuple[Dict[VReg, PhysReg], Optional[VReg]]:
    """One scan; returns (assignment, vreg to spill or None)."""
    free: Dict[str, List[int]] = {
        "i": list(range(cell.int_registers - 1, -1, -1)),
        "f": list(range(cell.float_registers - 1, -1, -1)),
    }
    active: Dict[str, List[Interval]] = {"i": [], "f": []}
    assignment: Dict[VReg, PhysReg] = {}

    for interval in intervals:
        bank = interval.reg.type
        # Expire intervals that ended before this one starts.
        still_active = []
        for old in active[bank]:
            if old.end < interval.start:
                free[bank].append(assignment[old.reg].index)
            else:
                still_active.append(old)
        active[bank] = still_active

        if not free[bank]:
            # Spill the active interval (or this one) ending last.
            candidates = active[bank] + [interval]
            victim = max(candidates, key=lambda iv: (iv.end, iv.end - iv.start))
            return assignment, victim.reg
        index = free[bank].pop()
        assignment[interval.reg] = PhysReg(bank, index)
        active[bank].append(interval)
    return assignment, None


def _rewrite_with_spill(
    function: FunctionIR, victim: VReg, spill_slots: Dict[str, int]
) -> None:
    """Send ``victim`` to a frame slot; accesses go through fresh temps."""
    bank = victim.type
    slot = spill_slots[bank]
    spill_slots[bank] += 1
    array = _spill_array(function, bank, slot + 1)

    param_store: Optional[Instr] = None
    if victim in function.param_regs:
        # Store the incoming parameter to its slot on entry.
        param_store = Instr(
            Opcode.STORE,
            operands=(Const(slot, IR_INT), victim),
            array=array,
        )
        function.entry.instructions.insert(0, param_store)

    for block in function.blocks:
        rewritten: List[Instr] = []
        for instr in block.instructions:
            if instr is param_store:
                rewritten.append(instr)
                continue
            uses_victim = victim in instr.uses()
            defines_victim = instr.dest == victim
            if uses_victim:
                temp = function.new_vreg(bank)
                rewritten.append(
                    Instr(
                        Opcode.LOAD,
                        dest=temp,
                        operands=(Const(slot, IR_INT),),
                        array=array,
                    )
                )
                instr = instr.with_operands(
                    tuple(temp if v == victim else v for v in instr.operands)
                )
            if defines_victim:
                temp = function.new_vreg(bank)
                new_def = Instr(
                    instr.op,
                    dest=temp,
                    operands=instr.operands,
                    array=instr.array,
                    labels=instr.labels,
                    callee=instr.callee,
                )
                rewritten.append(new_def)
                rewritten.append(
                    Instr(
                        Opcode.STORE,
                        operands=(Const(slot, IR_INT), temp),
                        array=array,
                    )
                )
            else:
                rewritten.append(instr)
        block.instructions = rewritten


def _spill_array(function: FunctionIR, bank: str, needed_slots: int) -> FrameArray:
    """Get or grow the per-bank spill scratch array in the frame."""
    name = f"<spill.{bank}>"
    existing = next((a for a in function.arrays if a.name == name), None)
    if existing is not None and existing.length >= needed_slots:
        return existing
    if existing is not None:
        function.arrays.remove(existing)
    # Recompute offsets so the spill area sits after all user arrays.
    offset = 0
    rebuilt = []
    for array in function.arrays:
        rebuilt.append(
            FrameArray(array.name, array.element_type, array.length, offset)
        )
        offset += array.length
    grown = FrameArray(name, bank, needed_slots, offset)
    rebuilt.append(grown)
    # Remap instructions to the rebuilt FrameArray objects (offsets moved).
    by_name = {a.name: a for a in rebuilt}
    for block in function.blocks:
        for index, instr in enumerate(block.instructions):
            if instr.array is not None:
                block.instructions[index] = Instr(
                    instr.op,
                    dest=instr.dest,
                    operands=instr.operands,
                    array=by_name[instr.array.name],
                    labels=instr.labels,
                    callee=instr.callee,
                )
    function.arrays = rebuilt
    return grown
