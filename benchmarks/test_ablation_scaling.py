"""Ablation: scaling the processor count (paper §6).

"For the style of parallelism exploited by this compiler, on the order of
8 to 16 processors can be used comfortably.  For our domain of
application programs, extending the number of processors beyond this
range is unlikely to yield any additional speedup."
"""

from figures_common import write_figure
from repro.cluster.cluster import ClusterSimulation
from repro.metrics.experiments import profile_for
from repro.metrics.series import Figure
from repro.parallel.schedule import fcfs_assignment

PROCESSORS = [1, 2, 4, 8, 12, 16, 24, 32]


def build_figure() -> Figure:
    """A 16-function medium program swept over processor counts."""
    # 16 = two stacked S_8 mediums; reuse the 8-function profile twice.
    profile = profile_for("medium", 8)
    import copy

    big = copy.deepcopy(profile)
    clone = copy.deepcopy(profile)
    for index, fn in enumerate(clone.functions):
        fn.name = f"g{index}"
    big.functions.extend(clone.functions)
    big.parse_work *= 2
    big.sema_work *= 2
    big.assembly_work *= 2
    big.source_lines *= 2

    sim = ClusterSimulation()
    seq = sim.run_sequential(big)
    fig = Figure(
        "Ablation: scaling",
        "Speedup vs processors (16 medium functions)",
        "processors",
        "speedup (elapsed)",
        xs=list(PROCESSORS),
    )
    series = fig.new_series("speedup")
    for p in PROCESSORS:
        par = sim.run_parallel(big, fcfs_assignment(big.functions, p))
        series.add(p, seq.elapsed / par.elapsed)
    return fig


def test_scaling_saturates_between_8_and_16(benchmark, results_dir):
    fig = benchmark(build_figure)
    write_figure(results_dir, fig)
    series = fig.series_named("speedup")

    # Speedup grows up to 8 processors...
    assert series.points[2] > series.points[1]
    assert series.points[8] > series.points[4] > series.points[2]
    # ...but going beyond 16 buys essentially nothing.
    assert series.points[32] <= series.points[16] * 1.10
    assert series.points[24] <= series.points[16] * 1.10
