"""The master process: the top of the parallel compiler's hierarchy.

"The master level consists of exactly one process, the master that
controls the entire compilation ... it invokes a Common Lisp process that
parses the Warp program to obtain enough information to set up the
parallel compilation.  Thus, the master knows the structure of the
program and therefore the total number of processes involved in one
compilation" (§3.2).

Our master: parses and checks once (aborting on errors), builds one
:class:`FunctionTask` per function, consults the persistent artifact
cache (functions whose fingerprints hit never cross the process
boundary), streams the remaining tasks through an execution backend while
section masters recombine results as they arrive, and runs phase 4 —
sequentially by default, or per-section-parallel and link-cached
(``phase4_jobs``/``link_cache``) with each section's link job submitted
the moment its streaming recombiner completes.  The output is
bit-identical to the sequential compiler's.

Ownership: a compile never shuts down or reconfigures the backend or
cache it was given — both may be shared with other compilers (the
compile service multiplexes many concurrent compilations over one warm
pool and one artifact cache).  Callers that *want* the compiler to tear
its backend down with it pass ``owns_backend=True`` and use
:meth:`ParallelCompiler.close` (or the context-manager form); a borrowed
backend is left exactly as it was found.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Callable, Dict, Iterable, List, Optional, Tuple

from ..asmlink.download import module_digest, module_size_words
from ..asmlink.objformat import ObjectFunction
from ..machine.warp_array import WarpArrayModel
from ..parallel.backend import ExecutionBackend, stream_task_results
from ..parallel.local import SerialBackend
from ..parallel.schedule import ast_cost_hint
from .function_master import FunctionTask, FunctionTaskResult, phase1_cached
from .phases import (
    ParsedProgram,
    Phase1Stats,
    Phase4Runner,
    Phase4Stats,
    phase1_parallel,
    phase1_parse_and_check,
    phase4_link_and_download,
)
from .results import CompilationResult, WorkProfile
from .section_master import StreamingSectionCombiner

#: A dispatch seam: takes the cache-miss tasks, yields their results in
#: completion order.  The default routes through ``self.backend``; the
#: compile service substitutes a fair-share queue feeding a shared pool.
TaskDispatch = Callable[[List[FunctionTask]], Iterable[FunctionTaskResult]]


class ParallelCompiler:
    """Master / section-master / function-master parallel compilation."""

    def __init__(
        self,
        backend: Optional[ExecutionBackend] = None,
        array: Optional[WarpArrayModel] = None,
        opt_level: int = 2,
        granularity: str = "function",
        cache=None,
        dispatch: Optional[TaskDispatch] = None,
        owns_backend: bool = False,
        phase1_jobs: Optional[int] = None,
        parse_cache=None,
        phase4_jobs: Optional[int] = None,
        link_cache=None,
        unroll_budget: int = 0,
        ii_budget: int = 0,
    ):
        if granularity not in ("function", "section"):
            raise ValueError(
                f"granularity must be 'function' or 'section', "
                f"got {granularity!r}"
            )
        self.backend = backend if backend is not None else SerialBackend()
        self.array = array or WarpArrayModel()
        self.opt_level = opt_level
        #: "function" (the paper's final design) or "section" (its
        #: original plan, §3.1) — section granularity is coarser: one
        #: worker per section program.
        self.granularity = granularity
        #: optional :class:`repro.cache.ArtifactCache`: phase-2/3 results
        #: are served from / written back to it, keyed per function.
        self.cache = cache
        #: optional :data:`TaskDispatch` that replaces direct backend
        #: dispatch — used by the compile service to interleave this
        #: compile's tasks with other tenants' on one shared pool.
        self.dispatch = dispatch
        #: whether :meth:`close` may shut the backend down.  False for
        #: caller-provided (possibly shared, possibly context-managed)
        #: backends: closing a compiler must never tear down a pool it
        #: does not own (the double-shutdown footgun).
        self.owns_backend = owns_backend
        #: thread count for the parallel phase-1 front end; None keeps
        #: the sequential front end (unless a parse cache is given, which
        #: also routes through :func:`phase1_parallel` at its default).
        self.phase1_jobs = phase1_jobs
        #: optional :class:`repro.cache.ParseCache`: per-function parse+
        #: sema results are served from / written back to it.
        self.parse_cache = parse_cache
        #: :class:`~repro.driver.phases.Phase1Stats` of the most recent
        #: :meth:`compile` — telemetry for reports and benchmarks.
        self.last_phase1_stats: Optional[Phase1Stats] = None
        #: thread count for the parallel phase-4 back end; None keeps
        #: the sequential tail (unless a link cache is given, which also
        #: routes through :class:`Phase4Runner` at its default).
        self.phase4_jobs = phase4_jobs
        #: optional :class:`repro.cache.LinkCache`: per-section linked
        #: programs and whole download modules are served from / written
        #: back to it.
        self.link_cache = link_cache
        #: :class:`~repro.driver.phases.Phase4Stats` of the most recent
        #: :meth:`compile` (None when the sequential tail ran).
        self.last_phase4_stats: Optional[Phase4Stats] = None
        #: variant-search codegen knobs, threaded into every task and
        #: into the cache fingerprints (both 0 = the standard pipeline).
        self.unroll_budget = unroll_budget
        self.ii_budget = ii_budget

    def close(self) -> None:
        """Release owned resources.  A borrowed backend is untouched;
        an owned one is shut down (idempotently).  The artifact cache is
        an on-disk store with no connection state — never closed here."""
        if self.owns_backend:
            shutdown = getattr(self.backend, "shutdown", None)
            if shutdown is not None:
                shutdown()

    def __enter__(self) -> "ParallelCompiler":
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> bool:
        self.close()
        return False

    def compile(
        self, source_text: str, filename: str = "<input>"
    ) -> CompilationResult:
        # Master: one extra parse of the whole program to determine the
        # partitioning; syntax/semantic errors abort here.  The parse
        # goes through the phase-1 cache so in-process workers (and, with
        # a fork start method, freshly forked pool workers) reuse it.
        stats = Phase1Stats()
        if self.phase1_jobs is not None or self.parse_cache is not None:
            front = lambda s, f: phase1_parallel(
                s,
                f,
                jobs=self.phase1_jobs,
                parse_cache=self.parse_cache,
                stats=stats,
            )
        else:
            front = lambda s, f: phase1_parse_and_check(s, f, stats=stats)
        parsed, memo_hit = phase1_cached(source_text, filename, front=front)
        if memo_hit:
            stats.mode = "memo"
        self.last_phase1_stats = stats
        tasks = self._build_tasks(parsed, source_text, filename)

        # Section masters combine incrementally: cache hits land first,
        # backend results stream in behind them.
        combiner = StreamingSectionCombiner(parsed.module.sections)
        stats_before = (
            self.cache.stats.copy() if self.cache is not None else None
        )
        # With an external dispatch the backend is driven by someone else
        # (the service's scheduler); its supervision counters aggregate
        # many concurrent jobs, so no per-compile delta is attributable.
        supervision = (
            getattr(self.backend, "supervision", None)
            if self.dispatch is None
            else None
        )
        supervision_before = (
            supervision.copy() if supervision is not None else None
        )
        misses, fingerprints = self._serve_from_cache(parsed, tasks, combiner)
        dispatched = bool(misses)

        # Parallel + incremental phase 4: link jobs overlap the
        # remaining phase-2/3 compiles.  diagnostics_text is fixed
        # before dispatch — the module embeds only the master's own
        # sink, never supervisor additions (see below).
        diagnostics_text = parsed.sink.render()
        runner: Optional[Phase4Runner] = None
        cached_module = None
        phase4_stats = Phase4Stats()
        if self.phase4_jobs is not None or self.link_cache is not None:
            runner = Phase4Runner(
                parsed,
                self.array,
                diagnostics_text,
                jobs=self.phase4_jobs,
                link_cache=self.link_cache,
                stats=phase4_stats,
            )
            if not misses:
                # Fully warm in phases 2/3: probe the whole-module tier
                # before linking anything.
                cached_module = runner.lookup_module(combiner.finalize())
            if cached_module is None:
                for ready in combiner.combined_sections():
                    runner.section_ready(ready)
        self.last_phase4_stats = phase4_stats if runner is not None else None

        for result in self._dispatch_misses(misses):
            if self.cache is not None:
                self._write_back(fingerprints, result)
            completed = combiner.add(result)
            if runner is not None and completed is not None:
                runner.section_ready(completed)
        combined = combiner.finalize()

        if self.dispatch is not None:
            dispatch_surface = self.dispatch
        else:
            dispatch_surface = self.backend
        profile = WorkProfile(
            parse_work=parsed.parse_work,
            sema_work=parsed.sema_work,
            source_lines=parsed.source_lines,
            workers_used=(
                getattr(
                    dispatch_surface, "effective_worker_count",
                    getattr(dispatch_surface, "worker_count", 1),
                )
                if dispatched
                # Everything came out of the artifact cache: the master
                # alone did the (trivial) work.
                else 1
            ),
            phase1_parse_ms=round(stats.parse_ms, 3),
            phase1_sema_ms=round(stats.sema_ms, 3),
            phase1_mode=stats.mode,
            parse_cache_hits=stats.cache_hits,
            parse_cache_misses=stats.cache_misses,
        )
        if stats_before is not None:
            profile.artifact_cache_evictions = (
                self.cache.stats.evictions - stats_before.evictions
            )
            profile.artifact_cache_corrupt = (
                self.cache.stats.corrupt - stats_before.corrupt
            )
        if supervision_before is not None:
            # The supervisor's counters are cumulative across compiles;
            # the profile records this compile's delta.
            profile.supervised = True
            profile.supervisor_timeouts = (
                supervision.timeouts - supervision_before.timeouts
            )
            profile.supervisor_hedges_won = (
                supervision.hedges_won - supervision_before.hedges_won
            )
            profile.supervisor_quarantines = (
                supervision.quarantines - supervision_before.quarantines
            )
            profile.supervisor_poisoned_tasks = (
                supervision.poisoned_tasks - supervision_before.poisoned_tasks
            )
            profile.supervisor_degradations = (
                supervision.degradations - supervision_before.degradations
            )
            profile.supervisor_corrupt_payloads = (
                supervision.corrupt_payloads - supervision_before.corrupt_payloads
            )
        objects: Dict[str, List[ObjectFunction]] = {}
        diagnostics: List[str] = []
        for section in parsed.module.sections:
            section_result = combined[section.name]
            objects[section.name] = section_result.objects
            profile.functions.extend(section_result.reports)
            diagnostics.extend(section_result.diagnostics)

        if runner is not None:
            module, assembly_work, link_work = runner.finish(
                combined, cached_module=cached_module
            )
            profile.phase4_assembly_ms = round(phase4_stats.assembly_ms, 3)
            profile.phase4_link_ms = round(phase4_stats.link_ms, 3)
            profile.phase4_mode = phase4_stats.mode
            profile.link_cache_hits = phase4_stats.link_cache_hits
            profile.link_cache_misses = phase4_stats.link_cache_misses
        else:
            module, assembly_work, link_work = phase4_link_and_download(
                parsed, objects, self.array, diagnostics_text
            )
        # Result diagnostics normally mirror the master's own sink; any
        # others (the supervisor's poison warnings and isolation
        # tracebacks) exist only on results.  Surface them on the
        # compilation result — but not inside the download module, whose
        # bytes must stay bit-identical to the sequential compiler's.
        sink_rendered = {d.render() for d in parsed.sink.diagnostics}
        extra = [
            line
            for line in dict.fromkeys(diagnostics)
            if line not in sink_rendered
        ]
        if extra:
            joined = "\n".join(extra)
            diagnostics_text = (
                f"{diagnostics_text}\n{joined}" if diagnostics_text else joined
            )
        profile.assembly_work = assembly_work
        profile.link_work = link_work
        profile.download_words = module_size_words(module)

        all_objects = [obj for section in parsed.module.sections
                       for obj in objects[section.name]]
        return CompilationResult(
            module_name=parsed.module.name,
            download=module,
            digest=module_digest(module),
            diagnostics_text=diagnostics_text,
            profile=profile,
            objects=all_objects,
        )

    def _dispatch_misses(
        self, misses: List[FunctionTask]
    ) -> Iterable[FunctionTaskResult]:
        """Run the cache-miss tasks through the dispatch seam."""
        if not misses:
            return ()
        if self.dispatch is not None:
            return self.dispatch(misses)
        return stream_task_results(self.backend, misses)

    # -- artifact cache -------------------------------------------------

    def _serve_from_cache(
        self,
        parsed: ParsedProgram,
        tasks: List[FunctionTask],
        combiner: StreamingSectionCombiner,
    ) -> Tuple[List[FunctionTask], Dict[Tuple[str, str], str]]:
        """Feed cache hits straight into the combiner; return the tasks
        that must go to the backend plus the fingerprint map for
        write-back."""
        if self.cache is None:
            return tasks, {}
        # The salt comes from the one canonical seam (repro.cache), passed
        # explicitly so the keying policy is visible at the call site.
        from ..cache import compiler_salt, module_fingerprints

        fingerprints = module_fingerprints(
            parsed.module,
            opt_level=self.opt_level,
            cell_count=self.array.cell_count,
            granularity=self.granularity,
            salt=compiler_salt(),
            unroll_budget=self.unroll_budget,
            ii_budget=self.ii_budget,
        )
        rendered = [d.render() for d in parsed.sink.diagnostics]
        misses: List[FunctionTask] = []
        for task in tasks:
            section = parsed.module.section_named(task.section_name)
            if task.function_name is not None:
                names = [task.function_name]
            else:
                # A section-level task is one unit of dispatch: it is
                # served from cache only when *every* function hits.
                names = [fn.name for fn in section.functions]
            hits: List[FunctionTaskResult] = []
            for name in names:
                cached = self.cache.get(
                    fingerprints[(task.section_name, name)]
                )
                if cached is None:
                    break
                hits.append(cached)
            if len(hits) < len(names):
                misses.append(task)
                continue
            for position, result in enumerate(hits):
                # Reconstruct what a live function master would have
                # sent: current diagnostics (once per task) and fresh
                # telemetry — the cached run's counters do not apply.
                result.diagnostics = list(rendered) if position == 0 else []
                result.report.phase1_cache_hits = 0
                result.report.phase1_cache_misses = 0
                result.report.artifact_cache_hits = 1
                result.report.artifact_cache_misses = 0
                combiner.add(result)
        return misses, fingerprints

    def _write_back(
        self,
        fingerprints: Dict[Tuple[str, str], str],
        result: FunctionTaskResult,
    ) -> None:
        """Persist one freshly compiled artifact and mark its report.

        Retried-then-successful results are written back like any other
        (the section master cannot tell a third-try result from a
        first-try one).  Poisoned or failed results are NEVER persisted:
        an in-process rescue or a stub must not masquerade as a healthy
        farm artifact on the next build.
        """
        if result.report.poisoned or result.report.failed:
            return
        fingerprint = fingerprints.get(
            (result.section_name, result.function_name)
        )
        if fingerprint is not None:
            # Strip per-run state before storing: diagnostics belong to
            # the module that *reads* the cache, and telemetry counters
            # are re-derived at hit time.
            sanitized = replace(
                result,
                diagnostics=[],
                report=replace(
                    result.report,
                    phase1_cache_hits=0,
                    phase1_cache_misses=0,
                    artifact_cache_hits=0,
                    artifact_cache_misses=0,
                ),
            )
            self.cache.put(fingerprint, sanitized)
        result.report.artifact_cache_hits = 0
        result.report.artifact_cache_misses = 1

    def _build_tasks(
        self, parsed: ParsedProgram, source_text: str, filename: str
    ) -> List[FunctionTask]:
        tasks: List[FunctionTask] = []
        for section in parsed.module.sections:
            if self.granularity == "section":
                tasks.append(
                    FunctionTask(
                        source_text=source_text,
                        filename=filename,
                        section_name=section.name,
                        function_name=None,
                        opt_level=self.opt_level,
                        cell_count=self.array.cell_count,
                        cost_hint=sum(
                            ast_cost_hint(fn) for fn in section.functions
                        ),
                        unroll_budget=self.unroll_budget,
                        ii_budget=self.ii_budget,
                    )
                )
                continue
            for function in section.functions:
                tasks.append(
                    FunctionTask(
                        source_text=source_text,
                        filename=filename,
                        section_name=section.name,
                        function_name=function.name,
                        opt_level=self.opt_level,
                        cell_count=self.array.cell_count,
                        cost_hint=ast_cost_hint(function),
                        unroll_budget=self.unroll_budget,
                        ii_budget=self.ii_budget,
                    )
                )
        return tasks
