"""Reaching-definitions analysis.

A definition is identified by ``(block name, index, register)``.  The
solution says, for each block entry, which definitions may reach it.  Used
by tests and by the dependence analysis to find loop-carried register
flows.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Tuple

from ..ir.cfg import FunctionIR
from ..ir.values import VReg
from .dataflow import BlockFacts, solve_forward_masks, unpack_solution

#: (block name, instruction index within block, defined register)
Definition = Tuple[str, int, VReg]


@dataclass
class ReachingDefinitions:
    """Reaching-definition facts plus handy lookup helpers."""

    facts: BlockFacts
    all_definitions: List[Definition]

    def reaching_entry(self, block_name: str) -> FrozenSet[Definition]:
        return self.facts.entry[block_name]

    def definitions_of(self, reg: VReg) -> List[Definition]:
        return [d for d in self.all_definitions if d[2] == reg]


def reaching_definitions(function: FunctionIR) -> ReachingDefinitions:
    """Solve reaching definitions with definitions numbered once.

    Each definition site gets one bit; gen/kill are built directly as
    bitsets (a block kills every other definition of the registers it
    writes, including the boundary/parameter definition).
    """
    all_defs: List[Definition] = []
    index: Dict[Definition, int] = {}
    local_last_of: Dict[str, Dict[VReg, Definition]] = {}
    for block in function.blocks:
        local_last: Dict[VReg, Definition] = {}
        for position, instr in enumerate(block.instructions):
            if instr.dest is not None:
                definition = (block.name, position, instr.dest)
                all_defs.append(definition)
                index[definition] = len(index)
                local_last[instr.dest] = definition
        local_last_of[block.name] = local_last

    # Parameters are definitions from 'outside'; model them as boundary
    # facts with index -1 in the entry block.
    boundary_defs = [
        (function.entry.name, -1, reg) for reg in function.param_regs
    ]
    for definition in boundary_defs:
        index[definition] = len(index)

    #: every definition bit (boundary included) of each register
    reg_mask: Dict[VReg, int] = {}
    for definition, bit in index.items():
        reg = definition[2]
        reg_mask[reg] = reg_mask.get(reg, 0) | 1 << bit

    gen: Dict[str, int] = {}
    kill: Dict[str, int] = {}
    boundary_mask = 0
    for definition in boundary_defs:
        boundary_mask |= 1 << index[definition]
    for block in function.blocks:
        gen_mask = 0
        kill_mask = 0
        for reg, definition in local_last_of[block.name].items():
            bit = 1 << index[definition]
            gen_mask |= bit
            kill_mask |= reg_mask[reg] & ~bit
        gen[block.name] = gen_mask
        kill[block.name] = kill_mask

    entry_m, exit_m = solve_forward_masks(
        function, gen, kill, boundary=boundary_mask
    )
    facts = unpack_solution(entry_m, exit_m, list(index))
    return ReachingDefinitions(facts=facts, all_definitions=all_defs)
