"""Section-level vs function-level task granularity (§3.1).

"The original plan was to parallelize only the compilation of programs
for different sections, but then we realized that since the compiler
performs only minimal inter-procedural optimizations, the scheme could be
extended to handle the parallel compilation of multiple functions in the
same section as well."
"""

import pytest

from repro.driver.function_master import FunctionTask, run_compile_task, run_function_master
from repro.driver.master import ParallelCompiler
from repro.driver.sequential import SequentialCompiler
from repro.parallel.fault_tolerance import (
    FlakyBackend,
    RetryBudgetExceeded,
    RetryingBackend,
)
from repro.parallel.local import ProcessPoolBackend, SerialBackend
from repro.parallel.warm_pool import WarmPoolBackend

from helpers import wrap_function

SOURCE = """
module grains
section a (cells 0..0)
  function a1(x: float) : float begin return x + 1.0; end
  function a2(x: float) : float begin return x + 2.0; end
end
section b (cells 1..1)
  function b1(x: float) : float begin return x * 3.0; end
end
end
"""


class TestSectionTasks:
    def test_section_task_compiles_all_functions(self):
        task = FunctionTask(SOURCE, "<t>", "a", None)
        results = run_compile_task(task)
        assert [r.function_name for r in results] == ["a1", "a2"]

    def test_function_task_still_single(self):
        task = FunctionTask(SOURCE, "<t>", "a", "a2")
        results = run_compile_task(task)
        assert [r.function_name for r in results] == ["a2"]

    def test_run_function_master_rejects_section_tasks(self):
        with pytest.raises(ValueError, match="section-level"):
            run_function_master(FunctionTask(SOURCE, "<t>", "a", None))

    def test_unknown_section_rejected(self):
        with pytest.raises(KeyError):
            run_compile_task(FunctionTask(SOURCE, "<t>", "zz", None))


class TestGranularityOption:
    def test_invalid_granularity_rejected(self):
        with pytest.raises(ValueError, match="granularity"):
            ParallelCompiler(granularity="module")

    def test_section_granularity_builds_one_task_per_section(self):
        from repro.driver.phases import phase1_parse_and_check

        compiler = ParallelCompiler(granularity="section")
        tasks = compiler._build_tasks(
            phase1_parse_and_check(SOURCE), SOURCE, "<t>"
        )
        assert [(t.section_name, t.function_name) for t in tasks] == [
            ("a", None),
            ("b", None),
        ]

    def test_both_granularities_produce_identical_output(self):
        sequential = SequentialCompiler().compile(SOURCE)
        by_function = ParallelCompiler(
            backend=SerialBackend(), granularity="function"
        ).compile(SOURCE)
        by_section = ParallelCompiler(
            backend=SerialBackend(), granularity="section"
        ).compile(SOURCE)
        assert by_function.digest == sequential.digest
        assert by_section.digest == sequential.digest

    def test_section_granularity_with_process_pool(self):
        sequential = SequentialCompiler().compile(SOURCE)
        parallel = ParallelCompiler(
            backend=ProcessPoolBackend(max_workers=2),
            granularity="section",
        ).compile(SOURCE)
        assert parallel.digest == sequential.digest


class TestSectionGranularityBackends:
    """Section-level tasks through the warm farm and the §5.2 retry
    wrapper — paths previously exercised only at function granularity."""

    def test_section_granularity_with_warm_pool(self):
        sequential = SequentialCompiler().compile(SOURCE)
        with WarmPoolBackend(max_workers=2) as backend:
            compiler = ParallelCompiler(
                backend=backend, granularity="section"
            )
            first = compiler.compile(SOURCE)
            second = compiler.compile(SOURCE)  # warm workers, cached parse
        assert first.digest == sequential.digest
        assert second.digest == sequential.digest
        assert backend.dispatches == 2

    def test_section_granularity_with_retrying_flaky_backend(self):
        flaky = FlakyBackend(
            SerialBackend(), 0.6, seed=1, max_failures_per_task=2
        )
        backend = RetryingBackend(flaky, max_attempts=4)
        parallel = ParallelCompiler(
            backend=backend, granularity="section"
        ).compile(SOURCE)
        sequential = SequentialCompiler().compile(SOURCE)
        assert parallel.digest == sequential.digest
        assert flaky.injected_failures > 0
        assert backend.retries_performed > 0

    def test_section_granularity_retry_budget_still_enforced(self):
        flaky = FlakyBackend(SerialBackend(), 0.999, seed=1)
        backend = RetryingBackend(flaky, max_attempts=2)
        with pytest.raises(RetryBudgetExceeded):
            ParallelCompiler(
                backend=backend, granularity="section"
            ).compile(SOURCE)
