"""The sequential compiler: all four phases in one process.

This is the baseline "that is commonly in use" (§2.2): one Lisp process
compiling every function in source order.  The parallel compiler must
produce exactly the same download module and diagnostics.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..asmlink.download import module_digest, module_size_words
from ..asmlink.objformat import ObjectFunction
from ..machine.warp_array import WarpArrayModel
from .phases import (
    ParsedProgram,
    compile_one_function,
    phase1_parse_and_check,
    phase4_link_and_download,
)
from .results import CompilationResult, WorkProfile


class SequentialCompiler:
    """Compile modules one function at a time, in source order."""

    def __init__(
        self,
        array: Optional[WarpArrayModel] = None,
        opt_level: int = 2,
    ):
        self.array = array or WarpArrayModel()
        self.opt_level = opt_level

    def compile(
        self, source_text: str, filename: str = "<input>"
    ) -> CompilationResult:
        parsed = phase1_parse_and_check(source_text, filename)
        return self.compile_parsed(parsed)

    def compile_parsed(self, parsed: ParsedProgram) -> CompilationResult:
        profile = WorkProfile(
            parse_work=parsed.parse_work,
            sema_work=parsed.sema_work,
            source_lines=parsed.source_lines,
        )
        objects: Dict[str, List[ObjectFunction]] = {}
        all_objects: List[ObjectFunction] = []
        for section in parsed.module.sections:
            section_objects: List[ObjectFunction] = []
            for function in section.functions:
                obj, report = compile_one_function(
                    parsed,
                    section.name,
                    function.name,
                    self.array,
                    self.opt_level,
                )
                section_objects.append(obj)
                all_objects.append(obj)
                profile.functions.append(report)
            objects[section.name] = section_objects

        diagnostics_text = parsed.sink.render()
        module, assembly_work, link_work = phase4_link_and_download(
            parsed, objects, self.array, diagnostics_text
        )
        profile.assembly_work = assembly_work
        profile.link_work = link_work
        profile.download_words = module_size_words(module)
        return CompilationResult(
            module_name=parsed.module.name,
            download=module,
            digest=module_digest(module),
            diagnostics_text=diagnostics_text,
            profile=profile,
            objects=all_objects,
        )
