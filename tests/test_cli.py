"""The warpcc command-line interface."""

import pytest

from repro.cli import main

GOOD = """
module cli_demo
section s (cells 0..0)
  function main()
  var v: float; k: int;
  begin
    for k := 1 to 3 do receive(v); send(v * 2.0); end;
  end
end
end
"""

BAD = """
module broken
section s (cells 0..0)
  function main() begin undeclared := 1; end
end
end
"""


@pytest.fixture
def good_file(tmp_path):
    path = tmp_path / "good.w2"
    path.write_text(GOOD)
    return str(path)


@pytest.fixture
def bad_file(tmp_path):
    path = tmp_path / "bad.w2"
    path.write_text(BAD)
    return str(path)


class TestCompile:
    def test_report(self, good_file, capsys):
        assert main(["compile", good_file]) == 0
        out = capsys.readouterr().out
        assert "s.main" in out
        assert "download module" in out

    def test_digest(self, good_file, capsys):
        assert main(["compile", good_file, "--emit", "digest"]) == 0
        out = capsys.readouterr().out
        assert "download-module cli_demo" in out

    def test_driver_descriptor(self, good_file, capsys):
        assert main(["compile", good_file, "--emit", "driver"]) == 0
        out = capsys.readouterr().out
        assert "io-driver" in out

    def test_errors_to_stderr_with_exit_code(self, bad_file, capsys):
        assert main(["compile", bad_file]) == 1
        err = capsys.readouterr().err
        assert "undeclared" in err

    def test_parallel_serial_fallback(self, good_file, capsys):
        assert main(
            ["compile", good_file, "--parallel", "--jobs", "1"]
        ) == 0

    def test_opt_levels(self, good_file, capsys):
        for level in ("0", "1", "2"):
            assert main(["compile", good_file, "-O", level]) == 0

    def test_emit_binary_round_trips(self, good_file, tmp_path, capsys):
        from repro.asmlink.encode import read_module
        from repro.warpsim.array_runner import run_module

        out = tmp_path / "demo.warp"
        assert main(
            ["compile", good_file, "--emit", "binary", "-o", str(out)]
        ) == 0
        assert "wrote" in capsys.readouterr().out
        module = read_module(str(out))
        result = run_module(module, [1.0, 2.0, 3.0])
        assert result.output_floats() == [2.0, 4.0, 6.0]

    def test_parallel_digest_matches_sequential(self, good_file, capsys):
        main(["compile", good_file, "--emit", "digest"])
        sequential = capsys.readouterr().out
        main(["compile", good_file, "--parallel", "--jobs", "1",
              "--emit", "digest"])
        parallel = capsys.readouterr().out
        assert parallel == sequential


class TestRun:
    def test_runs_program(self, good_file, capsys):
        assert main(["run", good_file, "--inputs", "1,2,3"]) == 0
        out = capsys.readouterr().out
        assert "2.0 4.0 6.0" in out
        assert "cycles:" in out

    def test_empty_inputs(self, tmp_path, capsys):
        path = tmp_path / "noin.w2"
        path.write_text(
            "module m\nsection s (cells 0..0)\n"
            "function main() begin send(7.5); end\nend\nend"
        )
        assert main(["run", str(path)]) == 0
        assert "7.5" in capsys.readouterr().out

    def test_compile_error_propagates(self, bad_file, capsys):
        assert main(["run", bad_file]) == 1

    def test_runs_prebuilt_binary_module(self, good_file, tmp_path, capsys):
        out = tmp_path / "prog.warp"
        assert main(
            ["compile", good_file, "--emit", "binary", "-o", str(out)]
        ) == 0
        capsys.readouterr()
        assert main(["run", str(out), "--inputs", "2,4,6"]) == 0
        assert "4.0 8.0 12.0" in capsys.readouterr().out


class TestDisasm:
    def test_disassembles_binary_module(self, good_file, tmp_path, capsys):
        out = tmp_path / "prog.warp"
        main(["compile", good_file, "--emit", "binary", "-o", str(out)])
        capsys.readouterr()
        assert main(["disasm", str(out)]) == 0
        text = capsys.readouterr().out
        assert "download-module cli_demo" in text
        assert "recv" in text and "send" in text

    def test_disasm_matches_compile_digest(self, good_file, tmp_path, capsys):
        out = tmp_path / "prog.warp"
        main(["compile", good_file, "--emit", "binary", "-o", str(out)])
        capsys.readouterr()
        main(["compile", good_file, "--emit", "digest"])
        digest = capsys.readouterr().out
        main(["disasm", str(out)])
        assert capsys.readouterr().out == digest

    def test_bad_file_errors(self, tmp_path, capsys):
        bogus = tmp_path / "junk.warp"
        bogus.write_bytes(b"not a module")
        assert main(["disasm", str(bogus)]) == 1
        assert "magic" in capsys.readouterr().err


class TestBench:
    def test_bench_point(self, capsys):
        assert main(["bench", "tiny", "2"]) == 0
        out = capsys.readouterr().out
        assert "speedup:" in out
        assert "system overhead:" in out

    def test_bench_with_processors(self, capsys):
        assert main(["bench", "tiny", "4", "--processors", "2"]) == 0
        out = capsys.readouterr().out
        assert "2 workstation(s)" in out
