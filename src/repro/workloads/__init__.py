"""Workload generators: the paper's synthetic and user programs."""

from .kernels import synthetic_function
from .sizes import FUNCTION_COUNTS, SIZE_CLASSES, SIZE_ORDER, lines_for
from .synthetic import all_synthetic_programs, synthetic_program
from .user_program import user_program, user_program_function_count

__all__ = [
    "FUNCTION_COUNTS",
    "SIZE_CLASSES",
    "SIZE_ORDER",
    "all_synthetic_programs",
    "lines_for",
    "synthetic_function",
    "synthetic_program",
    "user_program",
    "user_program_function_count",
]
