"""Fabric wire protocol: bounded framing, digest validation, backoff."""

import io
import random
import socket
import threading
import time

import pytest

from repro.driver.function_master import FunctionTask, run_compile_task
from repro.fabric.wire import (
    FABRIC_SECRET_ENV,
    AuthenticationError,
    ProtocolError,
    WireCorruption,
    backoff_delays,
    connect_with_backoff,
    decode_frame,
    decode_result,
    decode_task,
    encode_frame,
    encode_result,
    encode_task,
    pack_blob,
    read_frame_line,
    unpack_blob,
)

SOURCE = """
module wire_mod
section s (cells 0..0)
  function main()
  var v: float; k: int;
  begin
    for k := 1 to 3 do receive(v); send(v * 2.0); end;
  end
end
end
"""


def _compiled_result():
    task = FunctionTask(
        source_text=SOURCE,
        filename="wire_mod.w2",
        section_name="s",
        function_name="main",
    )
    return task, run_compile_task(task)[0]


class TestFraming:
    def test_reads_one_line(self):
        stream = io.BytesIO(b'{"op": "ping"}\n{"op": "next"}\n')
        assert read_frame_line(stream) == b'{"op": "ping"}\n'
        assert read_frame_line(stream) == b'{"op": "next"}\n'
        assert read_frame_line(stream) is None  # clean EOF

    def test_oversized_line_is_a_protocol_error(self):
        stream = io.BytesIO(b"x" * 100 + b"\n")
        with pytest.raises(ProtocolError) as excinfo:
            read_frame_line(stream, max_bytes=64)
        assert excinfo.value.reason == "oversized-frame"

    def test_stream_dying_mid_line_is_truncated_not_parsed(self):
        stream = io.BytesIO(b'{"op": "pi')  # no newline: writer died
        with pytest.raises(ProtocolError) as excinfo:
            read_frame_line(stream)
        assert excinfo.value.reason == "truncated-frame"

    def test_line_exactly_at_bound_is_fine(self):
        line = b"a" * 63 + b"\n"
        stream = io.BytesIO(line)
        assert read_frame_line(stream, max_bytes=64) == line

    def test_malformed_json_is_a_protocol_error(self):
        with pytest.raises(ProtocolError) as excinfo:
            decode_frame(b"this is not json\n")
        assert excinfo.value.reason == "bad-json"

    def test_non_object_frame_is_rejected(self):
        with pytest.raises(ProtocolError) as excinfo:
            decode_frame(b"[1, 2, 3]\n")
        assert excinfo.value.reason == "bad-request"

    def test_undecodable_bytes_are_a_protocol_error(self):
        with pytest.raises(ProtocolError):
            decode_frame(b"\xff\xfe garbage \xff\n")

    def test_encode_decode_roundtrip(self):
        frame = {"op": "ping", "n": 3}
        assert decode_frame(encode_frame(frame)) == frame


class TestBlobCodec:
    def test_task_roundtrip(self):
        task, _ = _compiled_result()
        frame = encode_task(task, "w0.0")
        assert frame["op"] == "task" and frame["id"] == "w0.0"
        decoded = decode_task(frame)
        assert decoded.section_name == "s"
        assert decoded.function_name == "main"
        assert decoded.source_text == task.source_text

    def test_result_roundtrip_preserves_payload_digest(self):
        _, result = _compiled_result()
        assert result.payload_digest is not None  # sealed by the master
        decoded = decode_result(encode_result(result, "w0.0"))
        assert decoded.payload_digest == result.payload_digest
        assert decoded.obj.digest_text() == result.obj.digest_text()

    def test_blob_digest_mismatch_is_corruption(self):
        task, _ = _compiled_result()
        frame = encode_task(task, "w0.0")
        frame["sha256"] = "0" * 64
        with pytest.raises(WireCorruption):
            decode_task(frame)

    def test_tampered_blob_is_corruption(self):
        task, _ = _compiled_result()
        frame = encode_task(task, "w0.0")
        blob = frame["blob"]
        frame["blob"] = blob[:10] + ("A" if blob[10] != "A" else "B") + blob[11:]
        with pytest.raises(WireCorruption):
            decode_task(frame)

    def test_wrong_payload_type_is_corruption(self):
        frame = pack_blob({"not": "a task"})
        with pytest.raises(WireCorruption):
            unpack_blob(frame, FunctionTask)

    def test_result_failing_sealed_digest_is_corruption(self):
        """A worker that pickled garbage under a stale seal is caught at
        the wire even though the blob digest (of the garbage) matches."""
        _, result = _compiled_result()
        result.obj.frame_words += 1  # payload changed, seal left stale
        frame = encode_result(result, "w0.0")
        with pytest.raises(WireCorruption):
            decode_result(frame)


class TestBackoff:
    def test_delays_are_capped_and_jittered(self):
        rng = random.Random(7)
        delays = list(backoff_delays(10, base=0.05, cap=0.4, rng=rng))
        assert len(delays) == 10
        # Jitter is ±50%: nothing above cap * 1.5, nothing negative.
        assert all(0.0 <= d <= 0.4 * 1.5 for d in delays)
        # Early delays are near base, not near cap.
        assert delays[0] < 0.1

    def test_deterministic_under_a_seeded_rng(self):
        a = list(backoff_delays(5, rng=random.Random(3)))
        b = list(backoff_delays(5, rng=random.Random(3)))
        assert a == b

    def test_connect_retries_through_the_startup_race(self):
        """The listener binds *after* the first connect attempt; the
        capped-backoff connect must win anyway."""
        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        port = probe.getsockname()[1]
        probe.close()  # port free again: connects are refused for now

        server_up = threading.Event()

        def late_bind():
            time.sleep(0.2)
            listener = socket.socket()
            listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
            listener.bind(("127.0.0.1", port))
            listener.listen(1)
            server_up.set()
            conn, _ = listener.accept()
            conn.close()
            listener.close()

        thread = threading.Thread(target=late_bind, daemon=True)
        thread.start()
        sock = connect_with_backoff(
            "127.0.0.1", port, attempts=12, base=0.05, cap=0.3
        )
        sock.close()
        assert server_up.is_set()
        thread.join(timeout=5)

    def test_connect_gives_up_with_the_real_error(self):
        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        port = probe.getsockname()[1]
        probe.close()
        with pytest.raises(ConnectionRefusedError):
            connect_with_backoff(
                "127.0.0.1", port, attempts=2, base=0.01, cap=0.02
            )


class TestRestrictedUnpickling:
    """A blob is decoded through a closed global allowlist: whatever a
    hostile peer pickles, nothing outside the task/result object graph
    can ever be constructed — let alone called."""

    def test_hostile_blob_is_rejected_not_executed(self, tmp_path):
        import base64
        import hashlib
        import os
        import pickle

        canary = tmp_path / "pwned"

        class Evil:
            def __reduce__(self):
                return (os.system, (f"touch {canary}",))

        blob = pickle.dumps(Evil(), protocol=pickle.HIGHEST_PROTOCOL)
        frame = {
            "op": "result",
            "id": "w0.0",
            "blob": base64.b64encode(blob).decode("ascii"),
            "sha256": hashlib.sha256(blob).hexdigest(),
        }
        with pytest.raises(WireCorruption):
            decode_result(frame)
        assert not canary.exists(), "restricted unpickler executed a payload"

    def test_blob_referencing_foreign_class_is_corruption(self):
        from fractions import Fraction

        frame = pack_blob(Fraction(1, 2))
        with pytest.raises(WireCorruption):
            unpack_blob(frame, object)

    def test_allowlist_admits_the_real_object_graph(self):
        """The full compiled result — object function, bundles, enums,
        registers, assembled form — survives the restricted decoder."""
        _, result = _compiled_result()
        decoded = decode_result(encode_result(result, "w0.0"))
        assert decoded.obj.digest_text() == result.obj.digest_text()
        if result.assembled is not None:
            assert decoded.assembled.digest_text() == result.assembled.digest_text()


class TestAuthentication:
    """With WARPCC_FABRIC_SECRET set, every blob carries an HMAC keyed
    on the shared secret, compared in constant time before unpickling."""

    def test_round_trip_under_a_shared_secret(self, monkeypatch):
        monkeypatch.setenv(FABRIC_SECRET_ENV, "fleet-secret")
        _, result = _compiled_result()
        frame = encode_result(result, "w0.0")
        assert "hmac" in frame
        decoded = decode_result(frame)
        assert decoded.payload_digest == result.payload_digest

    def test_unauthenticated_blob_is_rejected_when_secret_set(
        self, monkeypatch
    ):
        monkeypatch.delenv(FABRIC_SECRET_ENV, raising=False)
        task, _ = _compiled_result()
        frame = encode_task(task, "w0.0")  # packed with no secret
        assert "hmac" not in frame
        monkeypatch.setenv(FABRIC_SECRET_ENV, "fleet-secret")
        with pytest.raises(AuthenticationError):
            decode_task(frame)

    def test_wrong_secret_is_rejected(self, monkeypatch):
        monkeypatch.setenv(FABRIC_SECRET_ENV, "secret-a")
        task, _ = _compiled_result()
        frame = encode_task(task, "w0.0")
        monkeypatch.setenv(FABRIC_SECRET_ENV, "secret-b")
        with pytest.raises(AuthenticationError):
            decode_task(frame)

    def test_resealed_sha_does_not_forge_authenticity(self, monkeypatch):
        """An attacker can recompute the sha256 over a tampered blob —
        but not the HMAC, so the tamper is still caught."""
        import base64
        import hashlib
        import pickle

        monkeypatch.setenv(FABRIC_SECRET_ENV, "fleet-secret")
        task, _ = _compiled_result()
        frame = encode_task(task, "w0.0")
        evil = pickle.dumps(
            FunctionTask(
                source_text="module stolen end",
                filename="x.w2",
                section_name="s",
            ),
            protocol=pickle.HIGHEST_PROTOCOL,
        )
        frame["blob"] = base64.b64encode(evil).decode("ascii")
        frame["sha256"] = hashlib.sha256(evil).hexdigest()
        with pytest.raises(AuthenticationError):
            decode_task(frame)

    def test_no_secret_keeps_the_open_protocol(self, monkeypatch):
        monkeypatch.delenv(FABRIC_SECRET_ENV, raising=False)
        task, _ = _compiled_result()
        frame = encode_task(task, "w0.0")
        assert "hmac" not in frame
        assert decode_task(frame).source_text == task.source_text
