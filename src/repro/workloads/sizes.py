"""The paper's five benchmark function sizes (§4.1).

"We used 5 functions of increasing size ... The functions consisted of 4,
35, 100, 280 and 360 lines of code and were selected to require different
amounts of compilation time."
"""

from __future__ import annotations

from typing import Dict, List

#: size-class name -> target lines of code
SIZE_CLASSES: Dict[str, int] = {
    "tiny": 4,
    "small": 35,
    "medium": 100,
    "large": 280,
    "huge": 360,
}

#: presentation order used throughout the paper's figures
SIZE_ORDER: List[str] = ["tiny", "small", "medium", "large", "huge"]

#: the function counts the paper varied (§4.1)
FUNCTION_COUNTS: List[int] = [1, 2, 4, 8]


def lines_for(size_class: str) -> int:
    if size_class not in SIZE_CLASSES:
        raise KeyError(
            f"unknown size class {size_class!r}; "
            f"choose from {sorted(SIZE_CLASSES)}"
        )
    return SIZE_CLASSES[size_class]
