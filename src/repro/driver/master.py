"""The master process: the top of the parallel compiler's hierarchy.

"The master level consists of exactly one process, the master that
controls the entire compilation ... it invokes a Common Lisp process that
parses the Warp program to obtain enough information to set up the
parallel compilation.  Thus, the master knows the structure of the
program and therefore the total number of processes involved in one
compilation" (§3.2).

Our master: parses and checks once (aborting on errors), builds one
:class:`FunctionTask` per function, hands them to an execution backend,
lets section masters recombine per-section results in source order, and
runs the sequential phase-4 tail.  The output is bit-identical to the
sequential compiler's.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..asmlink.download import module_digest, module_size_words
from ..asmlink.objformat import ObjectFunction
from ..machine.warp_array import WarpArrayModel
from ..parallel.backend import ExecutionBackend
from ..parallel.local import SerialBackend
from ..parallel.schedule import ast_cost_hint
from .function_master import FunctionTask, FunctionTaskResult, phase1_cached
from .phases import ParsedProgram, phase4_link_and_download
from .results import CompilationResult, WorkProfile
from .section_master import CombinedSection, combine_section_results


class ParallelCompiler:
    """Master / section-master / function-master parallel compilation."""

    def __init__(
        self,
        backend: Optional[ExecutionBackend] = None,
        array: Optional[WarpArrayModel] = None,
        opt_level: int = 2,
        granularity: str = "function",
    ):
        if granularity not in ("function", "section"):
            raise ValueError(
                f"granularity must be 'function' or 'section', "
                f"got {granularity!r}"
            )
        self.backend = backend if backend is not None else SerialBackend()
        self.array = array or WarpArrayModel()
        self.opt_level = opt_level
        #: "function" (the paper's final design) or "section" (its
        #: original plan, §3.1) — section granularity is coarser: one
        #: worker per section program.
        self.granularity = granularity

    def compile(
        self, source_text: str, filename: str = "<input>"
    ) -> CompilationResult:
        # Master: one extra parse of the whole program to determine the
        # partitioning; syntax/semantic errors abort here.  The parse
        # goes through the phase-1 cache so in-process workers (and, with
        # a fork start method, freshly forked pool workers) reuse it.
        parsed, _ = phase1_cached(source_text, filename)
        tasks = self._build_tasks(parsed, source_text, filename)
        results = self.backend.run_tasks(tasks)

        # Section masters: recombine in source order.
        by_section: Dict[str, List[FunctionTaskResult]] = {}
        for result in results:
            by_section.setdefault(result.section_name, []).append(result)
        combined: Dict[str, CombinedSection] = {}
        for section in parsed.module.sections:
            combined[section.name] = combine_section_results(
                section, by_section.get(section.name, [])
            )

        profile = WorkProfile(
            parse_work=parsed.parse_work,
            sema_work=parsed.sema_work,
            source_lines=parsed.source_lines,
            workers_used=getattr(
                self.backend, "effective_worker_count",
                self.backend.worker_count,
            ),
        )
        objects: Dict[str, List[ObjectFunction]] = {}
        diagnostics: List[str] = []
        for section in parsed.module.sections:
            section_result = combined[section.name]
            objects[section.name] = section_result.objects
            profile.functions.extend(section_result.reports)
            diagnostics.extend(section_result.diagnostics)

        diagnostics_text = parsed.sink.render()
        module, assembly_work, link_work = phase4_link_and_download(
            parsed, objects, self.array, diagnostics_text
        )
        profile.assembly_work = assembly_work
        profile.link_work = link_work
        profile.download_words = module_size_words(module)

        all_objects = [obj for section in parsed.module.sections
                       for obj in objects[section.name]]
        return CompilationResult(
            module_name=parsed.module.name,
            download=module,
            digest=module_digest(module),
            diagnostics_text=diagnostics_text,
            profile=profile,
            objects=all_objects,
        )

    def _build_tasks(
        self, parsed: ParsedProgram, source_text: str, filename: str
    ) -> List[FunctionTask]:
        tasks: List[FunctionTask] = []
        for section in parsed.module.sections:
            if self.granularity == "section":
                tasks.append(
                    FunctionTask(
                        source_text=source_text,
                        filename=filename,
                        section_name=section.name,
                        function_name=None,
                        opt_level=self.opt_level,
                        cell_count=self.array.cell_count,
                        cost_hint=sum(
                            ast_cost_hint(fn) for fn in section.functions
                        ),
                    )
                )
                continue
            for function in section.functions:
                tasks.append(
                    FunctionTask(
                        source_text=source_text,
                        filename=filename,
                        section_name=section.name,
                        function_name=function.name,
                        opt_level=self.opt_level,
                        cell_count=self.array.cell_count,
                        cost_hint=ast_cost_hint(function),
                    )
                )
        return tasks
