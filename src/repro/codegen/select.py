"""Instruction selection: allocated IR -> machine operations.

The Warp cell's operation repertoire matches the IR closely, so selection
is mostly a typed table lookup that (a) binds virtual registers to the
physical registers chosen by the allocator, (b) materializes immediates in
place (the cell has immediate fields on every unit), and (c) resolves
frame arrays to frame-relative word offsets.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..asmlink.objformat import MachineOp, MachineOperand
from ..ir.cfg import BasicBlock, FunctionIR
from ..ir.instructions import Instr, Opcode
from ..ir.values import Const, IR_FLOAT, IR_INT, VReg
from ..machine.resources import FUClass, PhysReg
from ..machine.warp_cell import WarpCellModel
from .regalloc import AllocationResult


@dataclass
class SelectedBlock:
    """Machine ops for one basic block, pre-scheduling."""

    label: str
    ops: List[MachineOp] = field(default_factory=list)


def select_function(
    function: FunctionIR,
    allocation: AllocationResult,
    cell: WarpCellModel,
) -> List[SelectedBlock]:
    """Translate every block's IR to machine operations."""
    return [
        SelectedBlock(
            label=block.name,
            ops=[_select(instr, allocation, cell) for instr in block.instructions],
        )
        for block in function.blocks
    ]


def _operand(value, allocation: AllocationResult) -> MachineOperand:
    if isinstance(value, VReg):
        return allocation.reg_for(value)
    if isinstance(value, Const):
        return value.value
    raise TypeError(f"unexpected IR operand {value!r}")


def _select(
    instr: Instr, allocation: AllocationResult, cell: WarpCellModel
) -> MachineOp:
    dest = allocation.reg_for(instr.dest) if instr.dest is not None else None
    operands = tuple(_operand(v, allocation) for v in instr.operands)
    array_offset = instr.array.offset if instr.array is not None else None
    array_name = instr.array.name if instr.array is not None else None

    result_type = instr.dest.type if instr.dest is not None else _value_type(instr)
    operand_type = _operand_ir_type(instr)
    spec = cell.spec_for(instr.op, result_type, operand_type)
    return MachineOp(
        op=instr.op,
        fu=spec.fu,
        latency=spec.latency,
        dest=dest,
        operands=operands,
        array_offset=array_offset,
        array_name=array_name,
        labels=instr.labels,
        callee=instr.callee,
    )


def _value_type(instr: Instr) -> str:
    """IR type used to pick the functional unit for dest-less operations."""
    if instr.op is Opcode.STORE:
        return instr.operands[1].type
    if instr.op is Opcode.SEND:
        return instr.operands[0].type
    if instr.op is Opcode.RET and instr.operands:
        return instr.operands[0].type
    return IR_INT


def _operand_ir_type(instr: Instr) -> Optional[str]:
    """The widest operand type (routes float compares to the float adder)."""
    types = {v.type for v in instr.operands if isinstance(v, (VReg, Const))}
    if IR_FLOAT in types:
        return IR_FLOAT
    if types:
        return IR_INT
    return None
