#!/usr/bin/env python3
"""Aggregate the repo's BENCH_*.json trajectory points into one report.

Every landed perf PR leaves a ``BENCH_<date>_<topic>.json`` file at the
repo root (plus pytest-benchmark output for the original compile-speed
figures).  The files use a handful of schemas — pytest-benchmark,
paired warm/cold cache rounds, chaos overhead, service throughput,
critical-path scaling — so the dashboards kept diverging.  This script
recognizes each schema by its keys and renders everything into one
committed markdown file, ``docs/BENCH_TRAJECTORY.md``:

    python scripts/bench_report.py            # rewrite docs/BENCH_TRAJECTORY.md
    python scripts/bench_report.py --check    # exit 1 if the doc is stale
    python scripts/bench_report.py --stdout   # print instead of writing

Run it after adding a new trajectory point; CI's bench-smoke job only
archives artifacts, the committed doc is what reviewers diff.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
DOC = REPO / "docs" / "BENCH_TRAJECTORY.md"

HEADER = """\
# Benchmark trajectory

One row per committed `BENCH_*.json` trajectory point (repo root).
Regenerate with `python scripts/bench_report.py`; CI's bench-smoke job
archives the raw per-run artifacts, this table is the reviewable
history.
"""


def _fmt_s(value: float) -> str:
    return f"{value * 1000:.1f} ms" if value < 1.0 else f"{value:.2f} s"


def render_pyperf(doc: dict) -> list[str]:
    """pytest-benchmark output: one row per benchmark, median + ops."""
    lines = [
        "| benchmark | median | mean | rounds |",
        "|---|---|---|---|",
    ]
    for bench in doc.get("benchmarks", []):
        stats = bench.get("stats", {})
        lines.append(
            f"| `{bench.get('name', '?')}` "
            f"| {_fmt_s(stats.get('median', 0.0))} "
            f"| {_fmt_s(stats.get('mean', 0.0))} "
            f"| {stats.get('rounds', '?')} |"
        )
    return lines


def render_paired(doc: dict) -> list[str]:
    """Paired warm-vs-baseline rounds (cache, phase1, phase4 legs)."""
    baseline_key = next(
        (
            key
            for key in (
                "cold_median_s",
                "full_parse_median_s",
                "full_relink_median_s",
            )
            if key in doc
        ),
        None,
    )
    baseline = doc.get(baseline_key, 0.0) if baseline_key else 0.0
    warm = doc.get("warm_cache_median_s", 0.0)
    advantage = baseline / warm if warm else 0.0
    rows = [
        ("workload", doc.get("workload", "?")),
        ("baseline median", _fmt_s(baseline)),
        ("warm median", _fmt_s(warm)),
        ("advantage", f"{advantage:.2f}x"),
        (
            "warm wins",
            f"{doc.get('warm_wins', '?')}/{doc.get('rounds', '?')} rounds",
        ),
    ]
    if "edit_misses" in doc:
        rows.append(
            (
                "1-function edit",
                f"{doc['edit_misses']} miss, {doc.get('edit_hits', 0)} hits",
            )
        )
    return ["| metric | value |", "|---|---|"] + [
        f"| {k} | {v} |" for k, v in rows
    ]


def render_chaos(doc: dict) -> list[str]:
    rows = [
        ("workload", doc.get("workload", "?")),
        ("bare median", _fmt_s(doc.get("bare_median_s", 0.0))),
        ("supervised median", _fmt_s(doc.get("supervised_median_s", 0.0))),
        ("overhead", f"{doc.get('overhead_ratio', 0.0):.2f}x"),
    ]
    return ["| metric | value |", "|---|---|"] + [
        f"| {k} | {v} |" for k, v in rows
    ]


def render_service(doc: dict) -> list[str]:
    rows = [
        ("jobs", f"{doc.get('jobs_completed', '?')} completed"),
        (
            "throughput",
            f"{doc.get('throughput_jobs_per_s', 0.0):.1f} jobs/s",
        ),
        ("latency p50", _fmt_s(doc.get("latency_p50_s", 0.0))),
        ("latency p95", _fmt_s(doc.get("latency_p95_s", 0.0))),
    ]
    return ["| metric | value |", "|---|---|"] + [
        f"| {k} | {v} |" for k, v in rows
    ]


def render_scaling(doc: dict) -> list[str]:
    """Critical-path scaling legs (phase-1/phase-4 work model)."""
    speedups = doc.get("critical_path_speedup", {})
    lines = [
        f"Workload: {doc.get('workload', '?')}",
        "",
        "| jobs | critical-path work | speedup |",
        "|---|---|---|",
    ]
    work = doc.get("critical_path_work", {})
    for jobs in sorted(speedups, key=int):
        lines.append(
            f"| {jobs} | {work.get(jobs, '?')} | {speedups[jobs]:.2f}x |"
        )
    if "katseff_style_work" in doc:
        katseff = doc["katseff_style_work"]
        lines += [
            "",
            "Katseff-style baseline (partitioned assembly, sequential "
            "link tail): "
            + ", ".join(
                f"{jobs}w={katseff[jobs]}"
                for jobs in sorted(katseff, key=int)
            ),
        ]
    return lines


def render_fabric(doc: dict) -> list[str]:
    """Distributed-fabric scaling + node-kill robustness point."""
    rows = [
        ("workload", doc.get("workload", "?")),
        ("host cores", str(doc.get("cores", "?"))),
        ("1 node median", _fmt_s(doc.get("one_node_median_s", 0.0))),
        ("2 node median", _fmt_s(doc.get("two_node_median_s", 0.0))),
        ("speedup 2/1", f"{doc.get('speedup_2_over_1', 0.0):.2f}x"),
        (
            "node-kill round",
            _fmt_s(doc.get("node_kill_wall_s", 0.0))
            + f" ({doc.get('node_kill_tasks_requeued', '?')} task(s) "
            f"requeued, digest identical)",
        ),
    ]
    return ["| metric | value |", "|---|---|"] + [
        f"| {k} | {v} |" for k, v in rows
    ]


def render_search(doc: dict) -> list[str]:
    """Variant-search point: cycle wins + warm-sweep advantage."""
    rows = [
        ("workload", doc.get("workload", "?")),
        ("config space", ", ".join(doc.get("space", []))),
        (
            "strict wins",
            f"{doc.get('search_wins', '?')}/{doc.get('search_seeds', '?')} "
            f"seeds",
        ),
        (
            "cycles saved",
            f"{doc.get('baseline_cycles_total', 0) - doc.get('searched_cycles_total', 0)} "
            f"({doc.get('cycles_saved_pct', 0.0):.1f}%)",
        ),
        ("cold sweep", _fmt_s(doc.get("cold_sweep_wall_s", 0.0))),
        (
            "warm sweep",
            _fmt_s(doc.get("warm_sweep_wall_s", 0.0))
            + f" ({doc.get('warm_advantage', 0.0):.2f}x, "
            f"{doc.get('warm_variants_simulated', '?')} re-sims)",
        ),
    ]
    return ["| metric | value |", "|---|---|"] + [
        f"| {k} | {v} |" for k, v in rows
    ]


def render_predict(doc: dict) -> list[str]:
    """Watch-mode speculation point: replayed edit-session p95s."""
    spec = doc.get("benchmarks", {}).get("edit_session_speculated", {})
    cold = doc.get("benchmarks", {}).get("edit_session_cold", {})
    rows = [
        (
            "workload",
            f"{spec.get('edits', '?')} replayed edits, seed "
            f"{spec.get('seed', '?')}",
        ),
        (
            "interactive p95 (speculated)",
            _fmt_s(spec.get("interactive_p95_s", 0.0)),
        ),
        ("interactive p95 (cold)", _fmt_s(cold.get("interactive_p95_s", 0.0))),
        (
            "advantage",
            f"{doc.get('speculation_advantage', 0.0):.2f}x "
            f"(bar: >{1 / doc.get('advantage_bar', 0.6):.2f}x)",
        ),
        (
            "cache-served submits",
            f"{spec.get('cache_served', '?')} task(s)",
        ),
        (
            "speculative jobs",
            f"{spec.get('speculation', {}).get('launched', '?')} launched",
        ),
    ]
    return ["| metric | value |", "|---|---|"] + [
        f"| {k} | {v} |" for k, v in rows
    ]


def render_one(doc: dict) -> list[str]:
    if "speculation_advantage" in doc:
        return render_predict(doc)
    if "benchmarks" in doc and "machine_info" in doc:
        return render_pyperf(doc)
    if "critical_path_speedup" in doc:
        return render_scaling(doc)
    if "node_kill_completed" in doc:
        return render_fabric(doc)
    if "search_wins" in doc:
        return render_search(doc)
    if "warm_cache_median_s" in doc:
        return render_paired(doc)
    if "overhead_ratio" in doc:
        return render_chaos(doc)
    if "throughput_jobs_per_s" in doc:
        return render_service(doc)
    # Unknown schema: dump the scalar fields so the point still shows.
    return ["| field | value |", "|---|---|"] + [
        f"| {k} | {v} |"
        for k, v in doc.items()
        if isinstance(v, (str, int, float, bool))
    ]


def build_report(paths: list[Path]) -> str:
    sections = [HEADER]
    for path in sorted(paths):
        try:
            doc = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError) as exc:
            sections.append(f"## {path.name}\n\n*unreadable: {exc}*\n")
            continue
        body = "\n".join(render_one(doc))
        sections.append(f"## {path.name}\n\n{body}\n")
    return "\n".join(sections)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--check",
        action="store_true",
        help="exit 1 if docs/BENCH_TRAJECTORY.md is out of date",
    )
    parser.add_argument(
        "--stdout",
        action="store_true",
        help="print the report instead of writing the doc",
    )
    args = parser.parse_args(argv)

    points = sorted(REPO.glob("BENCH_*.json"))
    if not points:
        print("no BENCH_*.json trajectory points found", file=sys.stderr)
        return 1
    report = build_report(points)
    if args.stdout:
        print(report, end="")
        return 0
    if args.check:
        current = DOC.read_text() if DOC.exists() else ""
        if current != report:
            print(
                "docs/BENCH_TRAJECTORY.md is stale; "
                "run: python scripts/bench_report.py",
                file=sys.stderr,
            )
            return 1
        print("docs/BENCH_TRAJECTORY.md is up to date")
        return 0
    DOC.write_text(report)
    print(f"wrote {DOC.relative_to(REPO)} ({len(points)} trajectory points)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
