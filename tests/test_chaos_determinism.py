"""ChaosBackend fault schedules are a pure function of the seed.

Every fault decision is drawn from an RNG derived from ``(seed, task
key, attempt)`` — sha256-hashed, so the schedule cannot depend on how a
caller interleaves dispatch.  These tests pin that contract: the same
seed must replay the *identical* fault schedule whether the compile runs
under barrier execution (``run_tasks_partial``) or streaming
(``run_tasks_streaming`` / ``run_tasks_events``), and regardless of task
submission order.
"""

import pytest

from repro.driver.master import ParallelCompiler
from repro.driver.phases import phase1_parse_and_check
from repro.driver.sequential import SequentialCompiler
from repro.parallel.fault_tolerance import ChaosBackend, FunctionMasterFailure
from repro.parallel.local import SerialBackend
from repro.parallel.supervisor import SupervisedBackend

from helpers import wrap_function

SOURCE = wrap_function(
    "\n".join(
        f"function f{i}(x: float) : float begin return x + {float(i)}; end"
        for i in range(8)
    )
)


def chaos(seed: int = 13) -> ChaosBackend:
    return ChaosBackend(
        SerialBackend(),
        workers=3,
        seed=seed,
        crash_rate=0.4,
        hang_rate=0.3,
        hang_delay=0.0,
        corrupt_rate=0.3,
    )


def build_tasks(source=SOURCE):
    return ParallelCompiler(backend=SerialBackend())._build_tasks(
        phase1_parse_and_check(source), source, "<t>"
    )


def schedule_via_barrier(backend, tasks):
    """(fault telemetry, per-task outcome) after one barrier dispatch."""
    results, failures = backend.run_tasks_partial(tasks)
    return _schedule(backend, results, failures)


def schedule_via_streaming(backend, tasks):
    """Same, driving the incremental streaming surface instead."""
    results, failures = [], []
    stream = backend.run_tasks_streaming(tasks)
    while True:
        try:
            results.append(next(stream))
        except StopIteration:
            break
        except FunctionMasterFailure as failure:
            failures.append(failure)
            break
    return _schedule(backend, results, failures)


def _schedule(backend, results, failures):
    return {
        "crashes": backend.injected_crashes,
        "hangs": backend.injected_hangs,
        "corruptions": backend.injected_corruptions,
        "results": sorted(
            (r.section_name, r.function_name, r.worker) for r in results
        ),
        "failures": sorted(
            (f.task.section_name, f.task.function_name, f.worker)
            for f in failures
        ),
    }


class TestScheduleDeterminism:
    def test_barrier_and_streaming_replay_identical_schedules(self):
        tasks = build_tasks()
        barrier = schedule_via_barrier(chaos(), list(tasks))
        streaming = schedule_via_streaming(chaos(), list(tasks))
        # run_tasks_streaming stops at the first failure (partial
        # progress model); compare the common prefix of outcomes and
        # the exact fault decisions for every task both paths reached.
        assert streaming["failures"] == barrier["failures"][:1] or (
            not barrier["failures"] and not streaming["failures"]
        )
        reached = {r for r in streaming["results"]}
        assert reached <= set(barrier["results"])

    def test_events_replay_is_bitwise_identical(self):
        tasks = build_tasks()

        def trace(backend):
            events = []
            for kind, payload in backend.run_tasks_events(list(tasks)):
                if kind == "start":
                    events.append(("start", payload.function_name))
                elif kind == "result":
                    events.append(
                        ("result", payload.function_name, payload.worker)
                    )
                else:
                    events.append(
                        ("failure", payload.task.function_name, payload.worker)
                    )
            return events, (
                backend.injected_crashes,
                backend.injected_hangs,
                backend.injected_corruptions,
            )

        assert trace(chaos()) == trace(chaos())

    def test_schedule_is_submission_order_independent(self):
        tasks = build_tasks()
        forward = chaos()
        reverse = chaos()
        f_results, f_failures = forward.run_tasks_partial(list(tasks))
        r_results, r_failures = reverse.run_tasks_partial(
            list(reversed(tasks))
        )
        key = lambda r: (r.section_name, r.function_name, r.worker)
        fkey = lambda f: (f.task.section_name, f.task.function_name, f.worker)
        assert sorted(map(key, f_results)) == sorted(map(key, r_results))
        assert sorted(map(fkey, f_failures)) == sorted(map(fkey, r_failures))

    def test_different_seeds_give_different_schedules(self):
        tasks = build_tasks()
        a = schedule_via_barrier(chaos(seed=1), list(tasks))
        b = schedule_via_barrier(chaos(seed=2), list(tasks))
        assert a != b


class TestSupervisedReplay:
    @pytest.mark.parametrize("seed", (3, 11, 29))
    def test_supervised_compile_digest_reproduces_under_seed(self, seed):
        """The full supervised-chaos pipeline, run twice with one seed,
        injects the same faults and produces the sequential digest."""

        def compile_once():
            inner = chaos(seed)
            # Deadlines off (task_timeout=0), hedging off, and
            # quarantine effectively off: attempt counts then depend
            # only on the seeded crash schedule, not on wall-clock
            # under CI load, so the telemetry comparison below is
            # sound.  (Quarantine's backoff expiry is wall-clock: a
            # slow run can bench all workers at once and degrade to
            # the fallback, which bypasses the chaos layer and drops
            # injections.)
            backend = SupervisedBackend(
                inner,
                task_timeout=0,
                hedge_after=None,
                max_attempts=6,
                poison_threshold=6,
                quarantine_after=100,
            )
            result = ParallelCompiler(backend=backend).compile(SOURCE)
            return result.digest, (
                inner.injected_crashes,
                inner.injected_hangs,
                inner.injected_corruptions,
            )

        digest_a, faults_a = compile_once()
        digest_b, faults_b = compile_once()
        assert digest_a == digest_b
        assert faults_a == faults_b
        assert digest_a == SequentialCompiler().compile(SOURCE).digest
