"""Architectural state of one executing cell.

Registers are read at issue; results land after their operation's latency
via a write-back list, which is exactly the timing contract the scheduler
and the software pipeliner compile against.  Data memory behaves the same
way (stores land after the store latency).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple, Union

from ..asmlink.objformat import AssembledFunction, CellProgram
from ..machine.resources import PhysReg
from ..machine.warp_cell import WarpCellModel

Number = Union[int, float]


class SimulationError(Exception):
    """The program did something the hardware would trap on."""


@dataclass
class Frame:
    """Saved caller context for a call."""

    function: AssembledFunction
    return_pc: int
    saved_registers: Dict[PhysReg, Number]
    result_reg: Optional[PhysReg]


@dataclass
class CellStats:
    bundles_executed: int = 0
    stall_cycles: int = 0
    busy_cycles: int = 0


class CellState:
    """One cell's registers, memory, write-back list, and control state."""

    def __init__(self, program: CellProgram, cell: WarpCellModel):
        self.program = program
        self.cell = cell
        self.registers: Dict[PhysReg, Number] = {}
        self.memory: List[Number] = [0] * cell.data_memory_words
        #: pending register write-backs: (due cycle, register, value)
        self.reg_writebacks: List[Tuple[int, PhysReg, Number]] = []
        #: pending memory write-backs: (due cycle, address, value)
        self.mem_writebacks: List[Tuple[int, int, Number]] = []
        self.call_stack: List[Frame] = []
        self.function: AssembledFunction = program.functions[program.entry]
        self.pc = 0
        self.busy_until = 0
        self.halted = False
        self.stats = CellStats()

    # -- registers ------------------------------------------------------------

    def read_register(self, reg: PhysReg) -> Number:
        return self.registers.get(reg, 0 if reg.bank == "i" else 0.0)

    def schedule_reg_write(self, due: int, reg: PhysReg, value: Number) -> None:
        value = int(value) if reg.bank == "i" else float(value)
        self.reg_writebacks.append((due, reg, value))

    def write_register_now(self, reg: PhysReg, value: Number) -> None:
        value = int(value) if reg.bank == "i" else float(value)
        self.registers[reg] = value

    # -- memory ---------------------------------------------------------------

    def frame_base(self) -> int:
        return self.program.frame_bases[self.function.name]

    def read_memory(self, address: int) -> Number:
        if not 0 <= address < len(self.memory):
            raise SimulationError(
                f"memory access out of range: address {address} "
                f"(cell has {len(self.memory)} words)"
            )
        return self.memory[address]

    def schedule_mem_write(self, due: int, address: int, value: Number) -> None:
        if not 0 <= address < len(self.memory):
            raise SimulationError(
                f"store out of range: address {address} "
                f"(cell has {len(self.memory)} words)"
            )
        self.mem_writebacks.append((due, address, value))

    # -- write-back ---------------------------------------------------------------

    def apply_writebacks(self, cycle: int) -> None:
        """Land every pending write due at or before ``cycle``.

        Same-register write-backs land in schedule order (the scheduler's
        WAW edges guarantee later program-order writes have later due
        cycles, so sorting by due cycle is sufficient and deterministic).
        """
        if self.reg_writebacks:
            due_now = [w for w in self.reg_writebacks if w[0] <= cycle]
            if due_now:
                self.reg_writebacks = [
                    w for w in self.reg_writebacks if w[0] > cycle
                ]
                for due, reg, value in sorted(due_now, key=lambda w: w[0]):
                    self.registers[reg] = value
        if self.mem_writebacks:
            due_now = [w for w in self.mem_writebacks if w[0] <= cycle]
            if due_now:
                self.mem_writebacks = [
                    w for w in self.mem_writebacks if w[0] > cycle
                ]
                for due, address, value in sorted(due_now, key=lambda w: w[0]):
                    self.memory[address] = value

    def has_pending_writes(self) -> bool:
        return bool(self.reg_writebacks or self.mem_writebacks)

    # -- calls ---------------------------------------------------------------------

    def enter_function(
        self,
        callee: AssembledFunction,
        args: List[Number],
        result_reg: Optional[PhysReg],
        return_pc: int,
    ) -> None:
        if len(args) != len(callee.param_regs):
            raise SimulationError(
                f"call to {callee.name!r}: expected "
                f"{len(callee.param_regs)} args, got {len(args)}"
            )
        self.call_stack.append(
            Frame(
                function=self.function,
                return_pc=return_pc,
                saved_registers=dict(self.registers),
                result_reg=result_reg,
            )
        )
        if len(self.call_stack) > 64:
            raise SimulationError("call stack overflow (recursion?)")
        self.function = callee
        self.pc = 0
        for reg, value in zip(callee.param_regs, args):
            self.write_register_now(reg, value)

    def leave_function(self, return_value: Optional[Number]) -> bool:
        """Return to the caller; True if the cell has finished its entry."""
        if not self.call_stack:
            self.halted = True
            return True
        frame = self.call_stack.pop()
        self.registers = frame.saved_registers
        if frame.result_reg is not None:
            if return_value is None:
                raise SimulationError(
                    f"{self.function.name!r} returned no value but the "
                    "caller expects one"
                )
            self.write_register_now(frame.result_reg, return_value)
        self.function = frame.function
        self.pc = frame.return_pc
        return False
