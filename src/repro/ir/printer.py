"""Textual IR dump, for debugging, diffing, and golden tests.

The printed form is deterministic: equal IR prints equally.  The parallel
compiler's integration tests diff these dumps between the sequential and
parallel paths to prove bit-identical phase-2/3 output.
"""

from __future__ import annotations

from typing import List

from .cfg import FunctionIR, ModuleIR


def print_function(function: FunctionIR) -> str:
    lines: List[str] = []
    params = ", ".join(str(r) for r in function.param_regs)
    ret = function.return_type or "void"
    lines.append(
        f"func {function.section_name}.{function.name}({params}) -> {ret}"
    )
    for array in function.arrays:
        lines.append(
            f"  frame {array.name}: {array.element_type}[{array.length}] "
            f"@ {array.offset}"
        )
    for block in function.blocks:
        lines.append(f"{block.name}:")
        lines.extend(f"  {instr}" for instr in block.instructions)
    return "\n".join(lines)


def print_module(module: ModuleIR) -> str:
    parts: List[str] = [f"module {module.name}"]
    for section_name, functions in module.functions.items():
        first, last = module.section_cells[section_name]
        parts.append(f"section {section_name} (cells {first}..{last})")
        for fn in functions:
            parts.append(print_function(fn))
    return "\n\n".join(parts)
