"""Surviving an unreliable network of workstations (§5.2).

The paper's authors complain that on a network of autonomous UNIX nodes
"it is hard to make a parallel program reliable ... the application code
becomes unwieldy as it tries to account for all possible failures in the
child processes and their host processors."

This example drives one compilation through the full failure taxonomy —
crashes, hangs, corrupt result payloads, and one poison function that
crashes on every worker — and shows the supervision layer absorbing all
of it: hung attempts are abandoned at their deadline, corrupt payloads
are detected by digest and re-run, and the poison function is isolated
and compiled in-process, while the final download module stays
bit-identical to the sequential compiler's.

Run:  python examples/unreliable_network.py
"""

from repro import ParallelCompiler, SequentialCompiler
from repro.parallel import (
    ChaosBackend,
    FlakyBackend,
    RetryingBackend,
    SerialBackend,
    SupervisedBackend,
)
from repro.workloads.synthetic import synthetic_program

SOURCE = synthetic_program("small", 6, module_name="flaky_build")


def crashes_only() -> None:
    """The PR-1 story: clean crashes, absorbed by simple retry."""
    sequential = SequentialCompiler().compile(SOURCE)
    flaky = FlakyBackend(
        SerialBackend(), failure_rate=0.5, seed=11, max_failures_per_task=2
    )
    backend = RetryingBackend(flaky, max_attempts=3)
    result = ParallelCompiler(backend=backend).compile(SOURCE)
    print("-- crashes only (RetryingBackend) --")
    print(f"injected crashes          : {flaky.injected_failures}")
    print(f"retries performed         : {backend.retries_performed}")
    print(f"output identical to the sequential compiler:",
          result.digest == sequential.digest)


def full_chaos() -> None:
    """The real §5.2 weather: crashes, hangs, corruption, and a poison
    task, supervised with deadlines, quarantine, and isolation."""
    sequential = SequentialCompiler().compile(SOURCE)
    chaos = ChaosBackend(
        SerialBackend(),
        workers=4,
        seed=3,
        crash_rate=0.25,        # killed Lisp processes
        hang_rate=0.3,          # wedged workstations
        hang_delay=1.5,
        corrupt_rate=0.2,       # damaged IPC payloads
        poison=(("sec1", "f3"),),  # crashes on EVERY worker
    )
    backend = SupervisedBackend(
        chaos,
        # The chaos backend reports when each attempt starts, so the
        # deadline measures the attempt itself (queueing excluded): 1s
        # is loose for an honest compile, tight for a 1.5s hang.
        task_timeout=1.0,
        max_attempts=4,
        poison_threshold=3,     # 3 distinct workers -> isolate in-process
    )
    result = ParallelCompiler(backend=backend).compile(SOURCE)
    stats = backend.supervision

    print("\n-- full chaos (SupervisedBackend) --")
    print(f"injected crashes          : {chaos.injected_crashes}")
    print(f"injected hangs            : {chaos.injected_hangs}")
    print(f"injected corruptions      : {chaos.injected_corruptions}")
    print(f"deadline timeouts         : {stats.timeouts}")
    print(f"corrupt payloads caught   : {stats.corrupt_payloads}")
    print(f"retries / quarantines     : {stats.retries} / {stats.quarantines}")
    print(f"poison tasks isolated     : {stats.poisoned_tasks}")
    poisoned = [f.name for f in result.profile.poisoned_functions()]
    print(f"poisoned functions        : {poisoned}")
    # f3 crashed on three distinct workers, got pulled out of the farm,
    # and compiled in-process — so the module is STILL bit-identical.
    print(f"output identical to the sequential compiler:",
          result.digest == sequential.digest)
    for line in result.report_lines():
        if "f3" in line or line.startswith("supervision:"):
            print(" ", line)


def main() -> None:
    crashes_only()
    full_chaos()


if __name__ == "__main__":
    main()
