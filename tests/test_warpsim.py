"""Warp array simulator: language semantics end-to-end.

These tests are the compiler's oracle: compile a program, run it on the
simulated array, and compare against direct Python evaluation of the
source semantics.
"""

import pytest

from repro.warpsim.cell_state import SimulationError
from repro.warpsim.queues import CellQueue

from helpers import compile_and_run, echo_module


class TestQueues:
    def test_fifo_order(self):
        q = CellQueue(4)
        for v in (1, 2, 3):
            q.push(v)
        assert [q.pop(), q.pop(), q.pop()] == [1, 2, 3]

    def test_capacity_enforced(self):
        q = CellQueue(1)
        q.push(1)
        assert q.is_full
        with pytest.raises(OverflowError):
            q.push(2)

    def test_pop_empty_raises(self):
        with pytest.raises(IndexError):
            CellQueue(1).pop()

    def test_counters(self):
        q = CellQueue(4)
        q.push(1)
        q.push(2)
        q.pop()
        assert q.total_pushed == 2
        assert q.total_popped == 1


class TestScalarSemantics:
    def _f(self, body: str, inputs):
        return compile_and_run(echo_module(body, len(inputs)), inputs).output_floats()

    def test_arithmetic(self):
        out = self._f("begin return (x + 3.0) * 2.0 - 1.0; end", [1.0, 5.0])
        assert out == [7.0, 15.0]

    def test_division(self):
        out = self._f("begin return x / 4.0; end", [10.0])
        assert out == [2.5]

    def test_unary_minus(self):
        out = self._f("begin return -x; end", [3.5, -2.0])
        assert out == [-3.5, 2.0]

    def test_conditionals(self):
        body = (
            "  begin\n"
            "    if x > 0.0 then return 1.0; else return -1.0; end;\n"
            "  end"
        )
        assert self._f(body, [5.0, -5.0, 0.0]) == [1.0, -1.0, -1.0]

    def test_logical_operators(self):
        body = (
            "  var a, b: int;\n"
            "  begin\n"
            "    a := x > 1.0;\n"
            "    b := x < 3.0;\n"
            "    if a and b then return 1.0; end;\n"
            "    if a or b then return 2.0; end;\n"
            "    return 0.0;\n"
            "  end"
        )
        assert self._f(body, [2.0, 4.0]) == [1.0, 2.0]

    def test_while_loop(self):
        body = (
            "  var n: int; acc: float;\n"
            "  begin\n"
            "    n := 5;\n"
            "    acc := x;\n"
            "    while n > 0 do acc := acc * 2.0; n := n - 1; end;\n"
            "    return acc;\n"
            "  end"
        )
        assert self._f(body, [1.0]) == [32.0]

    def test_integer_truncated_division_and_mod(self):
        body = (
            "  var n: int;\n"
            "  begin\n"
            "    n := -7;\n"
            "    return (n / 2) * 100 + n % 2;\n"
            "  end"
        )
        # trunc(-7/2) = -3, -7 % 2 = -1 (C semantics)
        assert self._f(body, [0.0]) == [-301.0]

    def test_int_to_float_widening(self):
        body = (
            "  var n: int;\n"
            "  begin n := 3; return x + n; end"
        )
        assert self._f(body, [0.5]) == [3.5]


class TestArraysAndLoops:
    def _f(self, body: str, inputs):
        return compile_and_run(echo_module(body, len(inputs)), inputs).output_floats()

    def test_array_store_load(self):
        body = (
            "  var a: array[4] of float;\n"
            "  begin a[2] := x * 10.0; return a[2]; end"
        )
        assert self._f(body, [1.5]) == [15.0]

    def test_array_sum(self):
        body = (
            "  var a: array[8] of float; i: int; acc: float;\n"
            "  begin\n"
            "    for i := 0 to 7 do a[i] := i; end;\n"
            "    acc := 0.0;\n"
            "    for i := 0 to 7 do acc := acc + a[i]; end;\n"
            "    return acc + x;\n"
            "  end"
        )
        assert self._f(body, [0.0]) == [28.0]

    def test_nested_loop_matrix_flavor(self):
        body = (
            "  var i, j: int; acc: float;\n"
            "  begin\n"
            "    acc := 0.0;\n"
            "    for i := 1 to 3 do\n"
            "      for j := 1 to 3 do\n"
            "        acc := acc + i * j;\n"
            "      end;\n"
            "    end;\n"
            "    return acc;\n"
            "  end"
        )
        assert self._f(body, [0.0]) == [36.0]

    def test_loop_with_step(self):
        body = (
            "  var i: int; acc: float;\n"
            "  begin\n"
            "    acc := 0.0;\n"
            "    for i := 0 to 10 by 3 do acc := acc + i; end;\n"
            "    return acc;\n"
            "  end"
        )
        assert self._f(body, [0.0]) == [0.0 + 3 + 6 + 9]

    def test_empty_loop_body_not_entered(self):
        body = (
            "  var i: int; acc: float;\n"
            "  begin\n"
            "    acc := 7.0;\n"
            "    for i := 5 to 2 do acc := 0.0; end;\n"
            "    return acc;\n"
            "  end"
        )
        assert self._f(body, [0.0]) == [7.0]


class TestCalls:
    def test_call_with_return_value(self):
        src = """
module t
section s (cells 0..0)
  function square(v: float) : float begin return v * v; end
  function main()
  var x: float;
  begin receive(x); send(square(x) + square(x + 1.0)); end
end
end
"""
        out = compile_and_run(src, [2.0]).output_floats()
        assert out == [4.0 + 9.0]

    def test_callee_does_not_clobber_caller_registers(self):
        src = """
module t
section s (cells 0..0)
  function noisy(v: float) : float
  var a, b, c, d: float;
  begin
    a := v * 2.0; b := a + 1.0; c := b * 3.0; d := c - a;
    return d;
  end
  function main()
  var x, keep: float;
  begin
    receive(x);
    keep := x * 100.0;
    send(noisy(x) + keep);
  end
end
end
"""
        # noisy(2) = ((2*2)+1)*3 - 4 = 11; keep = 200
        out = compile_and_run(src, [2.0]).output_floats()
        assert out == [211.0]

    def test_call_chain(self):
        src = """
module t
section s (cells 0..0)
  function inc(v: float) : float begin return v + 1.0; end
  function twice(v: float) : float begin return inc(inc(v)); end
  function main()
  var x: float;
  begin receive(x); send(twice(x)); end
end
end
"""
        assert compile_and_run(src, [5.0]).output_floats() == [7.0]


class TestMultiCell:
    def test_two_cell_pipeline_applies_twice(self):
        src = """
module t
section s (cells 0..1)
  function main()
  var v: float; k: int;
  begin
    for k := 1 to 3 do
      receive(v);
      send(v * 2.0);
    end;
  end
end
end
"""
        out = compile_and_run(src, [1.0, 2.0, 3.0]).output_floats()
        assert out == [4.0, 8.0, 12.0]

    def test_two_sections_different_programs(self):
        src = """
module t
section first (cells 0..0)
  function main()
  var v: float; k: int;
  begin
    for k := 1 to 2 do receive(v); send(v + 10.0); end;
  end
end
section second (cells 1..1)
  function main()
  var v: float; k: int;
  begin
    for k := 1 to 2 do receive(v); send(v * 3.0); end;
  end
end
end
"""
        out = compile_and_run(src, [1.0, 2.0]).output_floats()
        assert out == [33.0, 36.0]

    def test_cell_reduces_stream(self):
        """Cell consumes 4 inputs, emits 1: systolic reduction."""
        src = """
module t
section s (cells 0..0)
  function main()
  var v, acc: float; k: int;
  begin
    acc := 0.0;
    for k := 1 to 4 do receive(v); acc := acc + v; end;
    send(acc);
  end
end
end
"""
        out = compile_and_run(src, [1.0, 2.0, 3.0, 4.0]).output_floats()
        assert out == [10.0]


class TestTraps:
    def test_deadlock_detected(self):
        src = """
module t
section s (cells 0..0)
  function main()
  var v: float;
  begin receive(v); receive(v); send(v); end
end
end
"""
        with pytest.raises(SimulationError, match="deadlock"):
            compile_and_run(src, [1.0])  # second receive starves

    def test_division_by_zero_traps(self):
        src = """
module t
section s (cells 0..0)
  function main()
  var v: float;
  begin receive(v); send(v / (v - v)); end
end
end
"""
        with pytest.raises(SimulationError, match="arithmetic trap"):
            compile_and_run(src, [1.0])

    def test_cycle_limit(self):
        src = """
module t
section s (cells 0..0)
  function main()
  var n: int;
  begin
    n := 1;
    while n > 0 do n := 1; end;
  end
end
end
"""
        with pytest.raises(SimulationError, match="did not finish"):
            compile_and_run(src, [], max_cycles=2000)

    def test_stats_collected(self):
        result = compile_and_run(
            echo_module("  begin return x; end", 1), [1.0]
        )
        stats = result.cell_stats[0]
        assert stats.bundles_executed > 0
