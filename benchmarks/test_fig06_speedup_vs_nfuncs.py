"""Figure 6: speedup over the sequential compiler, all five sizes.

Paper: "Except for f_tiny, the speedup is always greater than 1 and
increases as the level of parallelism (that is the number of functions)
increases."
"""

from figures_common import PAPER_NAME, speedup_vs_n_figure, write_figure
from repro.workloads.sizes import FUNCTION_COUNTS, SIZE_ORDER


def test_fig06_speedup_vs_nfuncs(benchmark, results_dir):
    fig = benchmark(speedup_vs_n_figure)
    write_figure(results_dir, fig)

    tiny = fig.series_named(PAPER_NAME["tiny"])
    for n in FUNCTION_COUNTS:
        assert tiny.points[n] < 1.0  # f_tiny never wins

    for size in ("small", "medium", "large", "huge"):
        series = fig.series_named(PAPER_NAME[size])
        for n in (2, 4, 8):
            assert series.points[n] > 1.0
        values = [series.points[n] for n in FUNCTION_COUNTS]
        assert values == sorted(values)  # increases with parallelism

    # Performance increases with function size up to f_large, then
    # decreases again for f_huge (paper §4.2.2).
    at8 = {
        size: fig.series_named(PAPER_NAME[size]).points[8]
        for size in SIZE_ORDER
    }
    assert at8["tiny"] < at8["small"] < at8["medium"] <= at8["large"]
    assert at8["huge"] < at8["large"]
