"""The optimization-variant search: determinism, safety, incrementality.

The search's contract is that the shipped module is a *pure function of
(source, variant space, scoring inputs)* — independent of backend,
submission order, and every cache's temperature — and that nothing it
ships can be semantically different from, or slower than, the
reference-config baseline.  These tests drive each clause:

- a 200-seed property sweep: same (seed, space, inputs) -> identical
  winner configs and module digest, cold or warm;
- backend independence (serial / warm pool / fabric / reversed
  submission order);
- cold-vs-warm VariantStore equivalence, and the 1-function-edit
  property (editing one function re-scores exactly that function);
- the safety gates: a miscompiled faster variant is disqualified, and a
  poisoned score cache cannot ship a slower or wrong module.
"""

from __future__ import annotations

import json
import random

import pytest

from helpers import echo_module, wrap_function
from repro.cache import (
    ArtifactCache,
    VariantScore,
    VariantStore,
    compiler_salt,
    module_fingerprints,
    variant_key,
)
from repro.driver.function_master import clear_phase1_cache
from repro.driver.master import ParallelCompiler
from repro.machine.warp_array import WarpArrayModel
from repro.parallel.backend import stream_task_results
from repro.parallel.local import SerialBackend
from repro.search import (
    REFERENCE_KEY,
    SearchOutcome,
    VariantConfig,
    VariantSpace,
    default_space,
    search_module,
)
from repro.warpsim.scoring import input_set_digest, score_module

#: A compact space for the sweeps: reference, no-pipelining, unroll-16.
#: Three configs keep each search to three compiles of a tiny module.
SWEEP_SPACE_KEYS = (REFERENCE_KEY, "o2u0i1", "o2u16i0")


def sweep_space() -> VariantSpace:
    return VariantSpace.from_keys(SWEEP_SPACE_KEYS)


def seeded_kernel(seed: int) -> str:
    """A deterministic one-function module with a short constant-trip
    loop; trip count and constants vary by seed so different seeds pick
    different winners."""
    rng = random.Random(seed)
    trip = rng.randrange(2, 10)
    c1 = round(rng.uniform(0.1, 2.0), 2)
    c2 = round(rng.uniform(0.1, 1.0), 2)
    return wrap_function(
        f"""  function f(x: float, y: float) : float
  var acc, t: float; i: int;
  begin
    acc := x; t := y;
    for i := 0 to {trip} do
      acc := acc + x * {c1} + i;
      t := t * {c2} + acc;
    end;
    return acc + t;
  end"""
    )


TWO_FUNCTION = """module m2
section sec1 (cells 0..0)
  function f1(x: float, y: float) : float
  var acc, t: float; i: int;
  begin
    acc := x; t := y;
    for i := 0 to 7 do
      acc := acc + x * 0.5 + i;
      t := t * 0.75 + acc;
    end;
    return acc + t;
  end
  function f2(x: float, y: float) : float
  var acc: float; i: int;
  begin
    acc := y;
    for i := 0 to 5 do
      acc := acc + x * 0.25 - i;
    end;
    return acc;
  end
end
end
"""

#: TWO_FUNCTION with only f2's body edited (constant 0.25 -> 0.3).
TWO_FUNCTION_EDITED = TWO_FUNCTION.replace("x * 0.25", "x * 0.3")

ECHO = echo_module(
    """  var acc: float; i: int;
  begin
    acc := x;
    for i := 0 to 7 do
      acc := acc + x * 0.5;
    end;
    return acc;
  end""",
    3,
)
ECHO_INPUTS = [[1.0, 2.0, 3.0], [0.5, -1.5, 4.0]]


class TestVariantSpace:
    def test_config_key_round_trip(self):
        config = VariantConfig(2, 64, 1)
        assert config.key() == "o2u64i1"
        assert VariantConfig.from_key("o2u64i1") == config

    def test_bad_keys_are_rejected(self):
        for bad in ("", "u64", "o2u64", "o3u0i0x", "2-64-1"):
            with pytest.raises(ValueError):
                VariantConfig.from_key(bad)

    def test_reference_config_is_always_first(self):
        space = VariantSpace([VariantConfig(2, 64, 0)])
        assert space.reference.key() == REFERENCE_KEY
        assert space.keys() == [REFERENCE_KEY, "o2u64i0"]
        # even when the caller lists it later
        space = VariantSpace(
            [VariantConfig(2, 8, 0), VariantConfig(2, 0, 0)]
        )
        assert space.keys()[0] == REFERENCE_KEY

    def test_duplicates_collapse(self):
        space = VariantSpace.from_keys(
            [REFERENCE_KEY, "o2u8i0", "o2u8i0"]
        )
        assert space.keys() == [REFERENCE_KEY, "o2u8i0"]

    def test_parse_spec(self):
        space = VariantSpace.parse(" o2u0i0, o2u64i1 ")
        assert space.keys() == [REFERENCE_KEY, "o2u64i1"]
        with pytest.raises(ValueError):
            VariantSpace.parse(" , ")

    def test_default_space_shape(self):
        space = default_space()
        assert space.keys()[0] == REFERENCE_KEY
        assert len(space) == 5
        assert len(set(space.keys())) == len(space)


class TestDeterminismSweep:
    """200 seeds: winners and digest are a pure function of the inputs."""

    def test_200_seed_determinism_cold_vs_warm(self, tmp_path):
        cache = ArtifactCache(tmp_path / "cache")
        store = VariantStore(tmp_path / "cache")
        space = sweep_space()
        non_reference_wins = 0
        for seed in range(200):
            source = seeded_kernel(seed)
            cold = search_module(
                source, filename=f"k{seed}.w", space=space,
                input_seed=seed, cache=cache, variant_store=store,
            )
            warm = search_module(
                source, filename=f"k{seed}.w", space=space,
                input_seed=seed, cache=cache, variant_store=store,
            )
            assert cold.winners == warm.winners, f"seed {seed}"
            assert cold.result.digest == warm.result.digest, f"seed {seed}"
            assert cold.abstained is None, f"seed {seed}: {cold.abstained}"
            assert warm.verified
            # warm run re-simulates nothing the cold run scored
            assert not warm.simulated, f"seed {seed}: {warm.simulated}"
            if any(k != REFERENCE_KEY for k in cold.winners.values()):
                non_reference_wins += 1
        # The sweep must actually exercise the search: a healthy space
        # beats the reference on a meaningful share of the kernels.
        assert non_reference_wins >= 20

    def test_input_seed_changes_input_digest_not_correctness(self):
        source = seeded_kernel(3)
        a = search_module(source, space=sweep_space(), input_seed=0)
        b = search_module(source, space=sweep_space(), input_seed=1)
        assert a.input_digest != b.input_digest
        assert a.verified and b.verified


class TestBackendIndependence:
    """The same search through different execution surfaces ships the
    same winners and the same bytes."""

    def _reference_outcome(self, source: str) -> SearchOutcome:
        clear_phase1_cache()
        return search_module(source, space=sweep_space(), input_seed=11)

    def test_reversed_submission_order(self):
        source = TWO_FUNCTION
        expected = self._reference_outcome(source)

        def reversed_factory(config):
            backend = SerialBackend()
            return ParallelCompiler(
                backend=backend,
                opt_level=config.opt_level,
                unroll_budget=config.unroll_budget,
                ii_budget=config.ii_budget,
                dispatch=lambda tasks: stream_task_results(
                    backend, list(reversed(tasks))
                ),
            )

        clear_phase1_cache()
        reversed_outcome = search_module(
            source, space=sweep_space(), input_seed=11,
            compiler_factory=reversed_factory,
        )
        assert reversed_outcome.winners == expected.winners
        assert reversed_outcome.result.digest == expected.result.digest

    def test_warm_pool_backend(self):
        from repro.parallel.warm_pool import WarmPoolBackend

        source = TWO_FUNCTION
        expected = self._reference_outcome(source)
        pool = WarmPoolBackend(max_workers=2)
        try:
            clear_phase1_cache()
            outcome = search_module(
                source, space=sweep_space(), input_seed=11, backend=pool
            )
        finally:
            pool.shutdown()
        assert outcome.winners == expected.winners
        assert outcome.result.digest == expected.result.digest

    def test_fabric_backend(self):
        from repro.fabric import FabricHub, RemoteBackend, WorkerNodeAgent

        source = TWO_FUNCTION
        expected = self._reference_outcome(source)
        hub = FabricHub(lease_ttl=5.0, heartbeat_interval=0.5)
        agents = [
            WorkerNodeAgent(
                hub.address, SerialBackend(), node_id=f"search-node-{i}"
            ).start()
            for i in range(2)
        ]
        try:
            assert hub.wait_for_nodes(2, timeout=10.0)
            clear_phase1_cache()
            outcome = search_module(
                source, space=sweep_space(), input_seed=11,
                backend=RemoteBackend(hub),
            )
        finally:
            for agent in agents:
                agent.stop()
            hub.close()
        assert outcome.winners == expected.winners
        assert outcome.result.digest == expected.result.digest


class TestVariantStoreIncrementality:
    def test_cold_and_warm_store_agree(self, tmp_path):
        store = VariantStore(tmp_path)
        cold = search_module(
            TWO_FUNCTION, space=sweep_space(), variant_store=store
        )
        warm = search_module(
            TWO_FUNCTION, space=sweep_space(), variant_store=store
        )
        assert cold.simulated and not cold.cached
        assert warm.cached and not warm.simulated
        assert len(warm.cached) == len(cold.simulated)
        assert cold.winners == warm.winners
        assert cold.result.digest == warm.result.digest

    def test_one_function_edit_rescores_exactly_that_function(
        self, tmp_path
    ):
        cache = ArtifactCache(tmp_path)
        store = VariantStore(tmp_path)
        space = sweep_space()
        first = search_module(
            TWO_FUNCTION, space=space, cache=cache, variant_store=store
        )
        assert {fn for (_, fn, _) in first.simulated} == {"f1", "f2"}
        second = search_module(
            TWO_FUNCTION_EDITED, space=space, cache=cache,
            variant_store=store,
        )
        # f1 is untouched: its variant scores (and compiled artifacts)
        # are served from the stores; only the edited f2 re-scores.
        rescored = {fn for (_, fn, _) in second.simulated}
        assert rescored == {"f2"}, second.simulated
        cached = {fn for (_, fn, _) in second.cached}
        assert "f1" in cached

    def test_no_store_still_deterministic(self):
        a = search_module(TWO_FUNCTION, space=sweep_space())
        b = search_module(TWO_FUNCTION, space=sweep_space())
        assert a.winners == b.winners
        assert a.result.digest == b.result.digest


class TestSafetyGates:
    def test_miscompiled_faster_variant_is_disqualified(self):
        """A variant config whose compiler miscompiles (different
        semantics) must never win: the swap-module simulation catches
        the output divergence on the scoring inputs."""

        def tampering_factory(config):
            compiler = ParallelCompiler(
                backend=SerialBackend(),
                opt_level=config.opt_level,
                unroll_budget=config.unroll_budget,
                ii_budget=config.ii_budget,
            )
            if config.key() == "o2u16i0":
                return _TamperedCompiler(compiler)
            return compiler

        outcome = search_module(
            ECHO, space=sweep_space(), input_sets=ECHO_INPUTS,
            compiler_factory=tampering_factory,
        )
        assert outcome.abstained is None
        disqualified_configs = {
            key for (_, _, key) in outcome.disqualified
        }
        assert "o2u16i0" in disqualified_configs
        assert all(
            key != "o2u16i0" for key in outcome.winners.values()
        )
        # and whatever shipped still reproduces the baseline's outputs
        array = WarpArrayModel()
        shipped = score_module(
            outcome.result.download, ECHO_INPUTS, array
        )
        base = score_module(
            outcome.baseline.download, ECHO_INPUTS, array
        )
        assert shipped.outputs == base.outputs
        assert shipped.cycles <= base.cycles

    def test_poisoned_store_cannot_ship_a_slower_module(self, tmp_path):
        """A fabricated 'amazing' cached score for a variant that is
        actually slower lures the per-function pick — the whole-module
        verification gate must reject it and ship the baseline."""
        source = wrap_function(
            """  function f(x: float, y: float) : float
  var acc, t: float; i: int;
  begin
    acc := x; t := y;
    for i := 0 to 7 do
      acc := acc + x * 0.5 + i;
      t := t * 0.75 + acc;
    end;
    return acc + t;
  end"""
        )
        space = VariantSpace.from_keys([REFERENCE_KEY, "o2u0i1"])
        store = VariantStore(tmp_path)
        honest = search_module(
            source, space=space, variant_store=store
        )
        # o2u0i1 is genuinely slower on this kernel (pinned in
        # test_warpsim_cycles); the honest search keeps the reference.
        assert honest.winners == {("s", "f"): REFERENCE_KEY}
        baseline_cycles = honest.baseline_cycles

        # Poison the exact cache entry the search will consult.
        from helpers import parse_ok

        module, _ = parse_ok(source)
        fps = module_fingerprints(
            module, opt_level=2, cell_count=WarpArrayModel().cell_count,
            granularity="function", salt=compiler_salt(),
        )
        array = WarpArrayModel()
        base = score_module(honest.baseline.download, [[], []], array)
        key = variant_key(
            fps[("s", "f")], "o2u0i1", honest.input_digest
        )
        store.put(
            key,
            VariantScore(
                config_key="o2u0i1", cycles=1, outputs=base.outputs
            ),
        )

        poisoned = search_module(
            source, space=space, variant_store=store
        )
        # The lie was consumed from the store...
        assert (("s", "f", "o2u0i1")) in poisoned.cached
        # ...but the final re-simulation rejected the slower module.
        assert not poisoned.verified
        assert poisoned.result.digest == honest.baseline.digest
        assert poisoned.module_cycles == baseline_cycles
        assert poisoned.winners == {("s", "f"): REFERENCE_KEY}

    def test_abstains_when_baseline_cannot_simulate(self):
        # main() receives more values than the scoring inputs provide:
        # the baseline deadlocks, so the search abstains and ships it.
        outcome = search_module(
            ECHO, space=sweep_space(), input_sets=[[1.0]]
        )
        assert outcome.abstained is not None
        assert not outcome.verified
        assert outcome.result.digest == outcome.baseline.digest
        assert outcome.result.profile.searched


class _TamperedCompiler:
    """Wraps a compiler to compile subtly different source: a stand-in
    for a miscompiling optimization config."""

    def __init__(self, inner):
        self._inner = inner

    def compile(self, source, filename="<input>"):
        return self._inner.compile(
            source.replace("x * 0.5", "x * 0.25"), filename
        )

    def close(self):
        self._inner.close()


class TestResultSurface:
    def test_profile_counters_and_report_lines(self):
        outcome = search_module(TWO_FUNCTION, space=sweep_space())
        profile = outcome.result.profile
        assert profile.searched
        assert profile.search_space == list(SWEEP_SPACE_KEYS)
        assert profile.search_baseline_cycles == outcome.baseline_cycles
        assert profile.search_module_cycles == outcome.module_cycles
        assert (
            profile.search_cycles_saved
            == outcome.baseline_cycles - outcome.module_cycles
        )
        assert sum(profile.search_wins.values()) == 2  # one per function
        for report in profile.functions:
            assert report.winner_config in SWEEP_SPACE_KEYS
            assert report.simulated_cycles is not None
        lines = outcome.result.report_lines()
        assert any("search:" in line for line in lines)
        assert any("cycles" in line for line in lines)

    def test_search_metadata_does_not_leak_into_plain_compiles(self):
        outcome = search_module(TWO_FUNCTION, space=sweep_space())
        assert outcome.baseline.profile.searched is False
        assert all(
            fn.winner_config is None
            for fn in outcome.baseline.profile.functions
        )
        # the shipped result is a separate object with its own profile
        assert outcome.result.profile is not outcome.baseline.profile

    def test_to_dict_round_trips_search_fields(self):
        outcome = search_module(TWO_FUNCTION, space=sweep_space())
        document = json.loads(json.dumps(outcome.result.to_dict()))
        assert document["profile"]["searched"] is True
        assert document["profile"]["search_space"] == list(
            SWEEP_SPACE_KEYS
        )
        for fn in document["profile"]["functions"]:
            assert "winner_config" in fn
            assert "simulated_cycles" in fn

    def test_winner_report_reflects_shipped_code(self):
        """Bundle counts / IIs for a non-reference winner must describe
        the winning variant's code, not the reference compile's."""
        outcome = search_module(
            TWO_FUNCTION, space=VariantSpace.from_keys(
                [REFERENCE_KEY, "o2u8i0"]
            )
        )
        winners = outcome.winners
        if all(k == REFERENCE_KEY for k in winners.values()):
            pytest.skip("no non-reference winner on this kernel")
        by_name = {
            fn.name: fn for fn in outcome.result.profile.functions
        }
        base_by_name = {
            fn.name: fn for fn in outcome.baseline.profile.functions
        }
        for (_, name), key in winners.items():
            if key == REFERENCE_KEY:
                continue
            # unrolling changes the code shape, so some scheduling
            # metric must move relative to the reference compile
            assert (
                by_name[name].bundles != base_by_name[name].bundles
                or by_name[name].initiation_intervals
                != base_by_name[name].initiation_intervals
            )


class TestSearchCLI:
    def test_cli_search_report(self, tmp_path, capsys):
        from repro.cli import main

        path = tmp_path / "m.w"
        path.write_text(TWO_FUNCTION)
        code = main([
            "search", str(path), "--no-cache",
            "--space", ",".join(SWEEP_SPACE_KEYS),
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "search:" in out
        assert "config(s)" in out

    def test_cli_search_json(self, tmp_path, capsys):
        from repro.cli import main

        path = tmp_path / "m.w"
        path.write_text(TWO_FUNCTION)
        code = main([
            "search", str(path), "--no-cache", "--json",
            "--space", ",".join(SWEEP_SPACE_KEYS),
        ])
        assert code == 0
        document = json.loads(capsys.readouterr().out)
        assert document["ok"] is True
        assert document["search"]["verified"] is True
        assert document["search"]["space"] == list(SWEEP_SPACE_KEYS)
        assert set(document["search"]["winners"]) == {
            "sec1.f1", "sec1.f2"
        }
        assert (
            document["search"]["baseline_cycles"]
            >= document["search"]["module_cycles"]
        )

    def test_cli_search_digest_matches_api(self, tmp_path, capsys):
        from repro.cli import main

        path = tmp_path / "m.w"
        path.write_text(TWO_FUNCTION)
        code = main([
            "search", str(path), "--no-cache", "--emit", "digest",
            "--space", ",".join(SWEEP_SPACE_KEYS),
        ])
        assert code == 0
        printed = capsys.readouterr().out.strip()
        clear_phase1_cache()
        outcome = search_module(
            TWO_FUNCTION, filename=str(path), space=sweep_space()
        )
        assert printed == outcome.result.digest.strip()

    def test_cli_compile_search_flag_delegates(self, tmp_path, capsys):
        from repro.cli import main

        path = tmp_path / "m.w"
        path.write_text(TWO_FUNCTION)
        code = main(["compile", str(path), "--search", "--no-cache"])
        assert code == 0
        assert "search:" in capsys.readouterr().out

    def test_cli_search_uses_cache_dir(self, tmp_path, capsys):
        from repro.cli import main

        path = tmp_path / "m.w"
        path.write_text(TWO_FUNCTION)
        cache_dir = tmp_path / "cache"
        for _ in range(2):
            code = main([
                "search", str(path), "--cache-dir", str(cache_dir),
                "--space", ",".join(SWEEP_SPACE_KEYS),
            ])
            assert code == 0
        out = capsys.readouterr().out
        assert "variant store:" in out
        # the second run hits both tiers
        assert (cache_dir / "variants").is_dir()
        assert (cache_dir / "objects").is_dir()


class TestFuzzOracleSearchLeg:
    def test_search_pipeline_registered_but_not_default(self):
        from repro.fuzz.oracle import ALL_PIPELINES, DEFAULT_PIPELINES

        assert "search" in ALL_PIPELINES
        assert "search" not in DEFAULT_PIPELINES

    def test_search_leg_passes_on_generated_programs(self):
        from repro.fuzz.generator import (
            config_for_size_class,
            generate_program,
        )
        from repro.fuzz.oracle import DifferentialOracle, OracleConfig

        config = OracleConfig(
            pipelines=("sequential", "search"), check_semantics=False
        )
        with DifferentialOracle(config) as oracle:
            for seed in range(3):
                program = generate_program(
                    seed, config_for_size_class("small")
                )
                report = oracle.check(
                    program.source, inputs=program.inputs(), seed=seed
                )
                assert report.ok, report.describe()
