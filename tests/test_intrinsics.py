"""Hardware intrinsics: abs, sqrt, min, max."""

import math

import pytest

from repro.ir.instructions import Opcode
from repro.warpsim.cell_state import SimulationError

from helpers import compile_and_run, echo_module, sema_errors, single_function_ir, wrap_function


class TestSemantics:
    def _f(self, expr: str, inputs):
        body = f"  begin return {expr}; end"
        return compile_and_run(echo_module(body, len(inputs)), inputs).output_floats()

    def test_abs_float(self):
        assert self._f("abs(x)", [-3.5, 2.0]) == [3.5, 2.0]

    def test_sqrt(self):
        out = self._f("sqrt(x)", [9.0, 2.0])
        assert out[0] == 3.0
        assert out[1] == math.sqrt(2.0)

    def test_sqrt_of_int_widens(self):
        body = (
            "  var n: int;\n"
            "  begin n := 16; return sqrt(n) + x; end"
        )
        out = compile_and_run(echo_module(body, 1), [0.5]).output_floats()
        assert out == [4.5]

    def test_min_max_float(self):
        assert self._f("min(x, 2.0) + max(x, 10.0)", [5.0]) == [12.0]

    def test_min_max_int(self):
        body = (
            "  var a, b: int;\n"
            "  begin a := -3; b := 7; return min(a, b) * 100 + max(a, b); end"
        )
        out = compile_and_run(echo_module(body, 1), [0.0]).output_floats()
        assert out == [-293.0]

    def test_abs_int(self):
        body = (
            "  var n: int;\n"
            "  begin n := -9; return abs(n) + x; end"
        )
        assert compile_and_run(echo_module(body, 1), [0.5]).output_floats() == [9.5]

    def test_nested_intrinsics(self):
        assert self._f("sqrt(abs(min(x, -16.0)))", [-4.0]) == [4.0]

    def test_sqrt_negative_traps(self):
        with pytest.raises(SimulationError, match="arithmetic trap"):
            self._f("sqrt(x)", [-1.0])

    def test_intrinsics_inside_pipelined_loop(self):
        body = (
            "  var i: int; acc: float; a: array[16] of float;\n"
            "  begin\n"
            "    for i := 0 to 15 do a[i] := abs(x - i); end;\n"
            "    acc := 0.0;\n"
            "    for i := 0 to 15 do acc := acc + min(a[i], 4.0); end;\n"
            "    return acc;\n"
            "  end"
        )
        src = echo_module(body, 1)
        expected = sum(min(abs(8.0 - i), 4.0) for i in range(16))
        for level in (0, 1, 2):
            out = compile_and_run(src, [8.0], opt_level=level).output_floats()
            assert out == [expected]


class TestSemaChecks:
    def test_arity_checked(self):
        errs = sema_errors(
            wrap_function("function f(x: float) : float begin return min(x); end")
        )
        assert any("takes 2 argument" in e for e in errs)

    def test_redefining_intrinsic_rejected(self):
        errs = sema_errors(
            wrap_function("function sqrt(x: float) : float begin return x; end")
        )
        assert any("redefines a hardware intrinsic" in e for e in errs)

    def test_sqrt_returns_float(self):
        errs = sema_errors(
            wrap_function(
                "function f()\nvar n: int;\nbegin n := sqrt(4.0); end"
            )
        )
        assert any("cannot assign float to int" in e for e in errs)

    def test_abs_preserves_int_type(self):
        errs = sema_errors(
            wrap_function(
                "function f()\nvar n: int;\nbegin n := abs(-3); end"
            )
        )
        assert errs == []


class TestCompilerIntegration:
    def test_constant_folding(self):
        from repro.opt.pass_manager import PassManager
        from repro.ir.values import Const

        fn = single_function_ir(
            wrap_function(
                "function f() : float begin return sqrt(16.0) + abs(-2.0) "
                "+ min(1.0, 2.0) + max(3.0, 4.0); end"
            )
        )
        PassManager(2).run(fn)
        rets = [i for i in fn.all_instructions() if i.op is Opcode.RET]
        assert rets[0].operands[0] == Const(4.0 + 2.0 + 1.0 + 4.0, "f")

    def test_sqrt_negative_not_folded(self):
        from repro.opt.fold import fold_constants

        fn = single_function_ir(
            wrap_function("function f() : float begin return sqrt(-1.0); end")
        )
        fold_constants(fn)
        assert Opcode.SQRT in [i.op for i in fn.all_instructions()]

    def test_sqrt_issues_on_multiplier_unit(self):
        from repro.machine.resources import FUClass
        from repro.machine.warp_cell import WarpCellModel

        spec = WarpCellModel().spec_for(Opcode.SQRT, "f")
        assert spec.fu is FUClass.FMUL
        assert spec.latency > 5

    def test_sqrt_not_hoisted_by_licm(self):
        """sqrt traps on negatives: LICM must not speculate it."""
        from repro.opt.licm import hoist_loop_invariants
        from repro.ir.loops import find_loops

        fn = single_function_ir(
            wrap_function(
                "function f(x: float) : float\nvar i: int; acc: float;\n"
                "begin for i := 0 to 3 do acc := acc + sqrt(x); end; "
                "return acc; end"
            )
        )
        hoist_loop_invariants(fn)
        nest = find_loops(fn)
        loop_ops = [
            i.op
            for name in nest.all_loops()[0].blocks
            for i in fn.block_named(name).instructions
        ]
        assert Opcode.SQRT in loop_ops

    def test_min_max_hoisted_by_licm(self):
        from repro.opt.licm import hoist_loop_invariants
        from repro.ir.loops import find_loops

        fn = single_function_ir(
            wrap_function(
                "function f(x: float, y: float) : float\n"
                "var i: int; acc: float;\n"
                "begin for i := 0 to 3 do acc := acc + min(x, y); end; "
                "return acc; end"
            )
        )
        assert hoist_loop_invariants(fn) >= 1
