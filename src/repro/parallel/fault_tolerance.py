"""Fault-tolerant task execution and deterministic fault injection.

The paper's §5.2 is a lament about exactly this: "it is hard to make a
parallel program reliable ... the application code becomes unwieldy as it
tries to account for all possible failures in the child processes and
their host processors."  This module packages that unwieldy code once:

- :class:`RetryingBackend` wraps any execution backend and resubmits
  failed function-master tasks (on the real network: a crashed Lisp
  process or a rebooted workstation) until they succeed or a retry budget
  is exhausted;
- :class:`FlakyBackend` is the matching crash injector: it makes an
  inner backend fail deterministically (seeded), so recovery paths are
  testable and benchmarkable;
- :class:`ChaosBackend` is the full fault suite — clean crashes, hangs
  (slow tasks), corrupt result payloads, whole-worker death, and poison
  tasks that crash on every worker — over a set of *simulated named
  workers*, so the supervisor's health tracking and quarantine logic
  can be exercised end-to-end.

Because function masters are pure (same task -> same object code), retry
is always safe: the section master cannot tell a first-try result from a
third-try result, and the final download module stays bit-identical.
The richer failure taxonomy (deadlines, hedging, quarantine, poison
isolation) lives in :mod:`repro.parallel.supervisor`.
"""

from __future__ import annotations

import hashlib
import random
import time
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

from ..driver.function_master import FunctionTask, FunctionTaskResult
from .backend import ExecutionBackend, stream_task_results


class FunctionMasterFailure(Exception):
    """One function master died (injected or real).

    ``worker`` names the workstation the attempt ran on when the backend
    knows it (the fault suite's simulated workers always do; real pools
    usually don't) — the supervisor uses it for health attribution and
    for counting *distinct-worker* failures toward poison detection.
    """

    def __init__(
        self, task: FunctionTask, reason: str, worker: Optional[str] = None
    ):
        self.task = task
        self.reason = reason
        self.worker = worker
        at = f" on {worker}" if worker else ""
        super().__init__(
            f"function master {task.section_name}.{task.function_name} "
            f"failed{at}: {reason}"
        )


class RetryBudgetExceeded(Exception):
    """Tasks kept failing past the retry budget.

    ``failures`` carries the *complete attempt history* of every task
    that was given up on — one :class:`FunctionMasterFailure` per failed
    attempt, across all retry rounds, in round order.
    """

    def __init__(self, failures: List[FunctionMasterFailure]):
        self.failures = failures
        seen = []
        for f in failures:
            name = f"{f.task.section_name}.{f.task.function_name}"
            if name not in seen:
                seen.append(name)
        super().__init__(f"gave up on: {', '.join(seen)}")


def _task_key(task: FunctionTask) -> Tuple[str, str]:
    return (task.section_name, task.function_name)


class FlakyBackend:
    """Deterministic failure injection around any backend.

    Each (task, attempt) pair fails with probability ``failure_rate``,
    decided by a private seeded generator — the same seed always produces
    the same crash pattern, so tests and benchmarks are reproducible.
    """

    def __init__(
        self,
        inner: ExecutionBackend,
        failure_rate: float,
        seed: int = 0,
        max_failures_per_task: Optional[int] = None,
    ):
        if not 0.0 <= failure_rate < 1.0:
            raise ValueError(f"failure rate must be in [0, 1), got {failure_rate}")
        self.inner = inner
        self.failure_rate = failure_rate
        self._rng = random.Random(seed)
        self.max_failures_per_task = max_failures_per_task
        self._attempts: Dict[Tuple[str, str], int] = {}
        self.injected_failures = 0

    @property
    def worker_count(self) -> int:
        return self.inner.worker_count

    @property
    def effective_worker_count(self) -> int:
        return getattr(
            self.inner, "effective_worker_count", self.inner.worker_count
        )

    def run_tasks(self, tasks: List[FunctionTask]) -> List[FunctionTaskResult]:
        results, failures = self.run_tasks_partial(tasks)
        if failures:
            raise failures[0]
        return results

    def _decide(
        self, tasks: List[FunctionTask]
    ) -> Tuple[List[FunctionTask], List[FunctionMasterFailure]]:
        """Draw this round's crash pattern (consuming the shared RNG in
        task order); returns (survivors, doomed)."""
        doomed: List[FunctionMasterFailure] = []
        survivors: List[FunctionTask] = []
        for task in tasks:
            key = _task_key(task)
            attempt = self._attempts.get(key, 0)
            self._attempts[key] = attempt + 1
            fail = self._rng.random() < self.failure_rate
            if self.max_failures_per_task is not None:
                fail = fail and attempt < self.max_failures_per_task
            if fail:
                self.injected_failures += 1
                doomed.append(
                    FunctionMasterFailure(
                        task, f"injected crash on attempt {attempt + 1}"
                    )
                )
            else:
                survivors.append(task)
        return survivors, doomed

    def run_tasks_partial(
        self, tasks: List[FunctionTask]
    ) -> Tuple[List[FunctionTaskResult], List[FunctionMasterFailure]]:
        """Run tasks, injecting crashes; survivors are still computed."""
        survivors, doomed = self._decide(tasks)
        results = self.inner.run_tasks(survivors) if survivors else []
        return results, doomed

    def run_tasks_streaming(
        self, tasks: List[FunctionTask]
    ) -> Iterator[FunctionTaskResult]:
        """Native streaming with partial failure: survivors are yielded
        incrementally (through the inner backend's own streaming), then
        the first injected crash is raised as a per-task
        :class:`FunctionMasterFailure` — so streaming consumers see real
        partial progress instead of the barrier adapter's
        all-or-nothing behaviour.  The crash pattern is drawn up front
        in task order, so a given seed produces exactly the same
        failures as ``run_tasks_partial``."""
        survivors, doomed = self._decide(tasks)
        if survivors:
            yield from stream_task_results(self.inner, survivors)
        if doomed:
            raise doomed[0]


class RetryingBackend:
    """Resubmit failed function-master tasks, like a careful §5.2 master.

    Works with any inner backend: backends exposing
    ``run_tasks_partial`` (like :class:`FlakyBackend`) report per-task
    failures in bulk; plain backends are driven one task at a time so a
    single crash cannot take down the whole batch.

    The wrapper is transparent: besides forwarding
    ``effective_worker_count`` and the streaming API, unknown attributes
    (``is_warm``, ``dispatches``, ``shutdown``, ...) delegate to the
    inner backend instead of being hidden by the wrapper.
    """

    def __init__(self, inner, max_attempts: int = 3):
        if max_attempts < 1:
            raise ValueError(f"need at least one attempt, got {max_attempts}")
        self.inner = inner
        self.max_attempts = max_attempts
        self.retries_performed = 0

    def __getattr__(self, name: str):
        # Only reached for attributes RetryingBackend itself lacks.  The
        # __dict__ lookup avoids recursing before __init__ ran (e.g.
        # during unpickling).
        inner = self.__dict__.get("inner")
        if inner is None:
            raise AttributeError(name)
        return getattr(inner, name)

    @property
    def worker_count(self) -> int:
        return self.inner.worker_count

    @property
    def effective_worker_count(self) -> int:
        return getattr(
            self.inner, "effective_worker_count", self.inner.worker_count
        )

    def run_tasks(self, tasks: List[FunctionTask]) -> List[FunctionTaskResult]:
        return list(self.run_tasks_streaming(tasks))

    def run_tasks_streaming(
        self, tasks: List[FunctionTask]
    ) -> Iterator[FunctionTaskResult]:
        """Yield each task's result as soon as an attempt produces it;
        failed tasks re-enter the pending set for the next round.

        Failures are accumulated across rounds: when the budget runs out,
        :class:`RetryBudgetExceeded` carries every failed attempt of every
        given-up task, not just the final round's."""
        pending = list(tasks)
        history: Dict[Tuple[str, str], List[FunctionMasterFailure]] = {}
        for attempt in range(1, self.max_attempts + 1):
            if not pending:
                break
            if attempt > 1:
                self.retries_performed += len(pending)
            results, failures = self._attempt(pending)
            yield from results
            for failure in failures:
                history.setdefault(_task_key(failure.task), []).append(failure)
            pending = [f.task for f in failures]
        if pending:
            raise RetryBudgetExceeded(
                [
                    failure
                    for task in pending
                    for failure in history[_task_key(task)]
                ]
            )

    def _attempt(self, tasks: List[FunctionTask]):
        if hasattr(self.inner, "run_tasks_partial"):
            return self.inner.run_tasks_partial(tasks)
        results: List[FunctionTaskResult] = []
        failures: List[FunctionMasterFailure] = []
        for task in tasks:
            try:
                results.extend(self.inner.run_tasks([task]))
            except FunctionMasterFailure as failure:
                failures.append(failure)
            except Exception as error:  # a real child-process death
                failures.append(FunctionMasterFailure(task, repr(error)))
        return results, failures


class ChaosBackend:
    """The full fault suite: crashes, hangs, corruption, death, poison.

    Wraps an inner backend with a set of *simulated named workers*
    (``w0`` .. ``wN-1``).  Every (task, attempt) pair is assigned a
    worker and a fault decision drawn from a generator derived from
    ``(seed, task key, attempt)`` — a pure function of the seed, so the
    injected pattern is identical no matter how a supervisor interleaves
    retries, hedges, or timeouts around it.

    Fault classes (the §5.2 failure taxonomy):

    - **crash** (``crash_rate``): the attempt raises
      :class:`FunctionMasterFailure` attributed to its worker — a killed
      Lisp process;
    - **hang** (``hang_rate``/``hang_delay``): the attempt sleeps before
      compiling — an overloaded or wedged workstation.  The result still
      arrives, just late, which is exactly what deadline enforcement and
      straggler hedging must absorb;
    - **corrupt** (``corrupt_rate``): the attempt succeeds but its
      payload is scribbled on *after* the function master sealed its
      payload digest — a damaged IPC message;
    - **corrupt assembly** (``corrupt_assembly_rate``): the attempt
      succeeds but the *pre-assembled* payload (distributed assembly)
      is scribbled on after the digest was sealed — the object function
      is intact, so only validation of the assembled half can catch it
      before the linker lays out a frame size that was never compiled;
    - **worker death** (``dead_workers``): every attempt assigned to a
      dead worker fails — a rebooted host.  Combined with the
      supervisor's quarantine this exercises graceful degradation;
    - **poison** (``poison``): the named tasks crash on *every* worker —
      the task itself is bad, not the host.  Workers are rotated across
      attempts so distinct-worker poison detection triggers.

    The supervisor may call :meth:`exclude_workers` with its current
    quarantine set; excluded workers receive no further attempts (unless
    every worker is excluded, in which case assignment falls back to the
    full set — mirroring a master with nowhere left to send work).
    """

    def __init__(
        self,
        inner: ExecutionBackend,
        workers: int = 4,
        seed: int = 0,
        crash_rate: float = 0.0,
        hang_rate: float = 0.0,
        hang_delay: float = 0.25,
        corrupt_rate: float = 0.0,
        corrupt_assembly_rate: float = 0.0,
        dead_workers: Tuple[str, ...] = (),
        poison: Tuple[Tuple[str, Optional[str]], ...] = (),
        max_failures_per_task: Optional[int] = None,
        max_hangs_per_task: int = 1,
        max_corruptions_per_task: int = 1,
        sleep=time.sleep,
    ):
        if workers < 1:
            raise ValueError(f"need at least one worker, got {workers}")
        for name, rate in (
            ("crash_rate", crash_rate),
            ("hang_rate", hang_rate),
            ("corrupt_rate", corrupt_rate),
            ("corrupt_assembly_rate", corrupt_assembly_rate),
        ):
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {rate}")
        self.inner = inner
        self.worker_names = tuple(f"w{i}" for i in range(workers))
        self.seed = seed
        self.crash_rate = crash_rate
        self.hang_rate = hang_rate
        self.hang_delay = hang_delay
        self.corrupt_rate = corrupt_rate
        self.corrupt_assembly_rate = corrupt_assembly_rate
        self.dead_workers = frozenset(dead_workers)
        self.poison = frozenset(poison)
        self.max_failures_per_task = max_failures_per_task
        self.max_hangs_per_task = max_hangs_per_task
        self.max_corruptions_per_task = max_corruptions_per_task
        self._sleep = sleep
        self._excluded: frozenset = frozenset()
        self._attempts: Dict[Tuple[str, Optional[str]], int] = {}
        self._failures: Dict[Tuple[str, Optional[str]], int] = {}
        self._hangs: Dict[Tuple[str, Optional[str]], int] = {}
        self._corruptions: Dict[Tuple[str, Optional[str]], int] = {}
        self._asm_corruptions: Dict[Tuple[str, Optional[str]], int] = {}
        #: telemetry, per fault class
        self.injected_crashes = 0
        self.injected_hangs = 0
        self.injected_corruptions = 0
        self.injected_assembly_corruptions = 0

    @property
    def worker_count(self) -> int:
        return len(self.worker_names)

    @property
    def effective_worker_count(self) -> int:
        return getattr(
            self.inner, "effective_worker_count", self.inner.worker_count
        )

    def exclude_workers(self, names) -> None:
        """Stop assigning attempts to ``names`` (the supervisor's
        quarantine set).  Passing an empty set re-admits everyone."""
        self._excluded = frozenset(names)

    # -- deterministic decisions --------------------------------------

    def _rng_for(self, key, attempt: int) -> random.Random:
        salt = f"{self.seed}:{key[0]}.{key[1]}:{attempt}".encode("utf-8")
        digest = hashlib.sha256(salt).digest()
        return random.Random(int.from_bytes(digest[:8], "big"))

    def _assign_worker(self, key, attempt: int) -> str:
        """Rotate each task over the non-excluded workers, starting at a
        key-derived offset — deterministic, and guarantees consecutive
        attempts of one task land on *distinct* workers."""
        available = [
            w for w in self.worker_names if w not in self._excluded
        ] or list(self.worker_names)
        start = int.from_bytes(
            hashlib.sha256(f"{self.seed}:{key[0]}.{key[1]}".encode()).digest()[:4],
            "big",
        )
        return available[(start + attempt) % len(available)]

    # -- execution ----------------------------------------------------

    def run_tasks_events(self, tasks: List[FunctionTask]) -> Iterator[tuple]:
        """Incremental event stream: yields ``("start", task)`` when an
        attempt begins, then ``("result", r)`` / ``("failure", f)`` as it
        plays out, in task order.  This is the supervisor's preferred
        dispatch surface — failures arrive the moment they happen instead
        of poisoning the whole stream with an exception, and start events
        let per-task deadlines measure the attempt itself rather than the
        queueing in front of it."""
        for task in tasks:
            key = _task_key(task)
            attempt = self._attempts.get(key, 0)
            self._attempts[key] = attempt + 1
            rng = self._rng_for(key, attempt)
            worker = self._assign_worker(key, attempt)
            crash_draw = rng.random()
            hang_draw = rng.random()
            corrupt_draw = rng.random()
            # Drawn only when the fault class is armed, so seeds replay
            # the exact same schedules they produced before it existed.
            asm_draw = (
                rng.random() if self.corrupt_assembly_rate > 0 else 1.0
            )
            yield ("start", task)

            if key in self.poison:
                self.injected_crashes += 1
                yield (
                    "failure",
                    FunctionMasterFailure(
                        task,
                        f"poison task crashed (attempt {attempt + 1})",
                        worker=worker,
                    ),
                )
                continue
            if worker in self.dead_workers:
                self.injected_crashes += 1
                yield (
                    "failure",
                    FunctionMasterFailure(
                        task, f"worker {worker} is dead", worker=worker
                    ),
                )
                continue
            budget_left = (
                self.max_failures_per_task is None
                or self._failures.get(key, 0) < self.max_failures_per_task
            )
            if crash_draw < self.crash_rate and budget_left:
                self.injected_crashes += 1
                self._failures[key] = self._failures.get(key, 0) + 1
                yield (
                    "failure",
                    FunctionMasterFailure(
                        task,
                        f"injected crash on attempt {attempt + 1}",
                        worker=worker,
                    ),
                )
                continue
            if (
                hang_draw < self.hang_rate
                and self._hangs.get(key, 0) < self.max_hangs_per_task
            ):
                self.injected_hangs += 1
                self._hangs[key] = self._hangs.get(key, 0) + 1
                self._sleep(self.hang_delay)
            try:
                results = self.inner.run_tasks([task])
            except FunctionMasterFailure as failure:
                failure.worker = failure.worker or worker
                yield ("failure", failure)
                continue
            except Exception as error:  # a real child-process death
                yield (
                    "failure",
                    FunctionMasterFailure(task, repr(error), worker=worker),
                )
                continue
            corrupt = (
                corrupt_draw < self.corrupt_rate
                and self._corruptions.get(key, 0) < self.max_corruptions_per_task
            )
            if corrupt and results:
                self.injected_corruptions += 1
                self._corruptions[key] = self._corruptions.get(key, 0) + 1
            corrupt_asm = (
                asm_draw < self.corrupt_assembly_rate
                and self._asm_corruptions.get(key, 0)
                < self.max_corruptions_per_task
                and any(
                    getattr(r, "assembled", None) is not None for r in results
                )
            )
            if corrupt_asm:
                self.injected_assembly_corruptions += 1
                self._asm_corruptions[key] = (
                    self._asm_corruptions.get(key, 0) + 1
                )
            for position, result in enumerate(results):
                result.worker = worker
                if corrupt and position == 0:
                    # Scribble on the payload *after* the digest was
                    # sealed: the frame size silently changes, which
                    # would mislink — unless validation catches it.
                    result.obj.frame_words += 9973
                if corrupt_asm and result.assembled is not None:
                    # Scribble only the *pre-assembled* half: the object
                    # function still matches its own digest text, so a
                    # validator that ignores the assembled payload would
                    # happily link a frame size nobody compiled.
                    result.assembled.frame_words += 7717
                    corrupt_asm = False  # first assembled result only
                yield ("result", result)

    def run_tasks_partial(
        self, tasks: List[FunctionTask]
    ) -> Tuple[List[FunctionTaskResult], List[FunctionMasterFailure]]:
        results: List[FunctionTaskResult] = []
        failures: List[FunctionMasterFailure] = []
        for kind, payload in self.run_tasks_events(tasks):
            if kind == "result":
                results.append(payload)
            elif kind == "failure":
                failures.append(payload)
        return results, failures

    def run_tasks(self, tasks: List[FunctionTask]) -> List[FunctionTaskResult]:
        results, failures = self.run_tasks_partial(tasks)
        if failures:
            raise failures[0]
        return results

    def run_tasks_streaming(
        self, tasks: List[FunctionTask]
    ) -> Iterator[FunctionTaskResult]:
        """Yield survivors incrementally; raise the first failure at the
        end of the stream (per-task exception, partial progress kept)."""
        first_failure: Optional[FunctionMasterFailure] = None
        for kind, payload in self.run_tasks_events(tasks):
            if kind == "result":
                yield payload
            elif kind == "failure" and first_failure is None:
                first_failure = payload
        if first_failure is not None:
            raise first_failure
