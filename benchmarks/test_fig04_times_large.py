"""Figure 4: execution times for f_large — the best case.

Paper: "Parallel elapsed time is considerably smaller than sequential
elapsed time.  As the number of functions increases, the resulting
increase in parallel compilation time is only marginal ... adding more
tasks does not increase execution time - a parallel programmer's dream!"
"""

from figures_common import times_figure, write_figure
from repro.workloads.sizes import FUNCTION_COUNTS


def test_fig04_times_large(benchmark, results_dir):
    fig = benchmark(times_figure, "large", "Figure 4")
    write_figure(results_dir, fig)

    seq = fig.series_named("elapsed seq")
    par = fig.series_named("elapsed par")
    # Parallel wins clearly from 2 functions on.
    for n in (2, 4, 8):
        assert par.points[n] < seq.points[n] / 1.5
    # Sequential time grows ~linearly with n; parallel only marginally.
    assert seq.points[8] > 6 * seq.points[1]
    assert par.points[8] < 1.35 * par.points[1]  # "only marginal"
