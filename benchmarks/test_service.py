"""Compile-service benchmarks: seeded open-loop load over the shared
warm pool.

The service's claim is operational, not raw-speed: N concurrent jobs
from several tenants share ONE warm farm and ONE artifact cache with
fair-share interleaving, and under a seeded open-loop arrival schedule
the job-latency distribution stays sane — small jobs are bounded by a
wave of queueing delay, not by whatever huge module arrived first.

Results land in ``benchmarks/out/BENCH_service.json`` (p50/p95 job
latency, queue wait, pool utilization, per-tenant completions) — the
trajectory point CI archives for the service smoke job.
"""

import json
import platform

from repro.parallel.warm_pool import WarmPoolBackend
from repro.service import CompileService, LoadSpec, plan_load, run_load

WORKERS = 2

SPEC = LoadSpec(
    seed=42,
    jobs=12,
    arrival_rate=30.0,
    tenants={"alice": 1.0, "bob": 1.0},
    size_mix={"tiny": 0.7, "small": 0.3},
    functions_by_size={"tiny": 3, "small": 2},
)


def test_open_loop_load_meets_latency_and_utilization_bars(results_dir):
    backend = WarmPoolBackend(max_workers=WORKERS)
    try:
        with CompileService(
            backend, max_running=4, max_queued=SPEC.jobs
        ) as service:
            report = run_load(service, SPEC, time_scale=0.2)
    finally:
        backend.shutdown()

    summary = dict(
        report.to_dict(),
        arrival_rate_jobs_per_s=SPEC.arrival_rate,
        size_mix=SPEC.size_mix,
        python=platform.python_version(),
    )
    (results_dir / "BENCH_service.json").write_text(
        json.dumps(summary, indent=2) + "\n"
    )
    (results_dir / "service_load.txt").write_text(
        f"{report.jobs_planned} jobs, seed {SPEC.seed}, "
        f"{WORKERS} worker(s), 2 tenants\n"
        f"completed/failed/rejected: {report.jobs_completed}/"
        f"{report.jobs_failed}/{report.jobs_rejected}\n"
        f"job latency p50/p95:   {report.latency_p50:.3f}s / "
        f"{report.latency_p95:.3f}s\n"
        f"queue wait p50/p95:    {report.queue_wait_p50:.3f}s / "
        f"{report.queue_wait_p95:.3f}s\n"
        f"throughput:            {report.throughput:.2f} jobs/s\n"
        f"pool utilization:      {report.pool_utilization:.1%}\n"
    )
    print(f"\nservice load: p50 {report.latency_p50:.3f}s, "
          f"p95 {report.latency_p95:.3f}s, "
          f"utilization {report.pool_utilization:.1%}, "
          f"{report.jobs_completed}/{report.jobs_planned} completed")

    # The guards.  Every planned job must finish (the queue is sized to
    # admit the whole schedule), the percentiles must be ordered and
    # positive, and the shared pool must have been meaningfully busy —
    # an idle pool would mean the dispatcher serialized the jobs.
    assert report.jobs_completed == report.jobs_planned
    assert report.jobs_failed == 0 and report.jobs_rejected == 0
    assert 0 < report.latency_p50 <= report.latency_p95
    assert report.latency_p95 < 60.0
    assert 0.0 < report.pool_utilization <= 1.0
    # both tenants got service (fair share, not starvation)
    assert set(report.per_tenant_completed) == {"alice", "bob"}
    planned_tenants = {job.tenant for job in plan_load(SPEC)}
    assert planned_tenants == {"alice", "bob"}


def test_fair_share_bounds_small_job_latency_behind_huge_one(results_dir):
    """The monopolization guard, measured: a burst of tiny jobs
    arriving just after a huge module must not wait for the huge
    module to finish."""
    huge_spec = LoadSpec(
        seed=7,
        jobs=5,
        arrival_rate=1000.0,  # effectively simultaneous
        tenants={"heavy": 1.0, "light": 1.0},
        size_mix={"large": 0.2, "tiny": 0.8},
        functions_by_size={"large": 4, "tiny": 2},
    )
    backend = WarmPoolBackend(max_workers=WORKERS)
    try:
        with CompileService(
            backend, max_running=5, max_queued=8
        ) as service:
            report = run_load(service, huge_spec, time_scale=0.01)
            spans = list(service.spans)
    finally:
        backend.shutdown()

    assert report.jobs_completed == report.jobs_planned
    # tiny jobs' p50 must be well under the whole run's makespan: they
    # were interleaved, not queued behind the large module
    assert report.latency_p50 < report.elapsed
    jobs_seen = {span.job_id for span in spans}
    assert len(jobs_seen) >= 2  # the pool really was shared
    (results_dir / "service_fairness.txt").write_text(
        f"{huge_spec.jobs} near-simultaneous jobs "
        f"(large + tiny mix), {WORKERS} worker(s)\n"
        f"p50 {report.latency_p50:.3f}s, p95 {report.latency_p95:.3f}s, "
        f"makespan {report.elapsed:.3f}s\n"
        f"jobs interleaved on pool: {len(jobs_seen)}\n"
    )
