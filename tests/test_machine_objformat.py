"""Machine model and object-format unit tests."""

import pytest

from repro.asmlink.objformat import Bundle, MachineOp, ObjectFunction, ScheduledBlock
from repro.ir.instructions import Opcode
from repro.ir.values import IR_FLOAT, IR_INT
from repro.machine.resources import FUClass, OpSpec, PhysReg
from repro.machine.warp_array import WarpArrayModel, default_array
from repro.machine.warp_cell import WarpCellModel


class TestOpSpec:
    def test_latency_must_be_positive(self):
        with pytest.raises(ValueError):
            OpSpec(FUClass.IALU, 0)

    def test_physreg_str(self):
        assert str(PhysReg("f", 7)) == "fr7"


class TestWarpCellModel:
    def test_typed_dispatch(self):
        cell = WarpCellModel()
        assert cell.spec_for(Opcode.ADD, IR_INT).fu is FUClass.IALU
        assert cell.spec_for(Opcode.ADD, IR_FLOAT).fu is FUClass.FALU
        assert cell.spec_for(Opcode.MUL, IR_FLOAT).fu is FUClass.FMUL

    def test_float_compare_special_case(self):
        cell = WarpCellModel()
        spec = cell.spec_for(Opcode.CLT, IR_INT, operand_type=IR_FLOAT)
        assert spec.fu is FUClass.FALU
        int_spec = cell.spec_for(Opcode.CLT, IR_INT, operand_type=IR_INT)
        assert int_spec.fu is FUClass.IALU

    def test_control_flow_falls_back_to_int(self):
        cell = WarpCellModel()
        assert cell.spec_for(Opcode.JMP, IR_FLOAT).fu is FUClass.SEQ

    def test_unknown_combination_raises(self):
        cell = WarpCellModel(specs={})
        with pytest.raises(KeyError):
            cell.spec_for(Opcode.ADD, IR_INT)

    def test_register_banks(self):
        cell = WarpCellModel(int_registers=32, float_registers=48)
        assert cell.registers_in_bank("i") == 32
        assert cell.registers_in_bank("f") == 48
        with pytest.raises(ValueError):
            cell.registers_in_bank("x")

    def test_latencies_reflect_pipelining(self):
        cell = WarpCellModel()
        assert cell.spec_for(Opcode.ADD, IR_FLOAT).latency > cell.spec_for(
            Opcode.ADD, IR_INT
        ).latency
        assert cell.spec_for(Opcode.DIV, IR_FLOAT).latency > cell.spec_for(
            Opcode.MUL, IR_FLOAT
        ).latency


class TestWarpArrayModel:
    def test_default_array_is_ten_cells(self):
        assert default_array().cell_count == 10

    def test_invalid_cell_count(self):
        with pytest.raises(ValueError):
            WarpArrayModel(cell_count=0)

    def test_section_range_validation(self):
        array = WarpArrayModel(cell_count=4)
        array.validate_section_range(0, 3)
        with pytest.raises(ValueError):
            array.validate_section_range(2, 4)
        with pytest.raises(ValueError):
            array.validate_section_range(-1, 2)


class TestBundle:
    def _op(self, fu=FUClass.IALU):
        return MachineOp(op=Opcode.ADD, fu=fu, latency=1)

    def test_slot_collision_rejected(self):
        bundle = Bundle()
        bundle.add(self._op())
        with pytest.raises(ValueError, match="occupied"):
            bundle.add(self._op())

    def test_different_slots_coexist(self):
        bundle = Bundle()
        bundle.add(self._op(FUClass.IALU))
        bundle.add(self._op(FUClass.FALU))
        assert len(bundle.all_ops()) == 2

    def test_all_ops_in_fixed_slot_order(self):
        bundle = Bundle()
        bundle.add(self._op(FUClass.SEQ))
        bundle.add(self._op(FUClass.IALU))
        fus = [op.fu for op in bundle.all_ops()]
        assert fus == [FUClass.IALU, FUClass.SEQ]

    def test_empty_bundle_renders_nop(self):
        assert str(Bundle()) == "{nop}"


class TestObjectFunction:
    def test_digest_text_stable(self):
        block = ScheduledBlock("entry", [Bundle()])
        block.bundles[0].add(
            MachineOp(op=Opcode.RET, fu=FUClass.SEQ, latency=1)
        )
        obj = ObjectFunction(name="f", section_name="s", blocks=[block])
        assert obj.digest_text() == obj.digest_text()
        assert "entry:" in obj.digest_text()

    def test_bundle_count(self):
        block = ScheduledBlock("entry", [Bundle(), Bundle()])
        obj = ObjectFunction(name="f", section_name="s", blocks=[block])
        assert obj.bundle_count() == 2
