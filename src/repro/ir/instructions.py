"""Three-address IR instructions.

Every instruction has an opcode, an optional destination register, and a
tuple of operands.  Loads/stores carry a :class:`FrameArray` in addition to
the index operand.  Block terminators (``jmp``, ``br``, ``ret``) appear
only as the last instruction of a basic block.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, replace
from typing import List, Optional, Tuple

from .values import Const, FrameArray, IR_FLOAT, IR_INT, Value, VReg


class Opcode(enum.Enum):
    # Arithmetic (typed by the destination register)
    ADD = "add"
    SUB = "sub"
    MUL = "mul"
    DIV = "div"
    MOD = "mod"  # integers only
    NEG = "neg"
    # Hardware intrinsics (the Warp cell has abs/min/max logic on both
    # ALUs and a square-root unit next to the multiplier)
    ABS = "abs"
    SQRT = "sqrt"
    MIN = "min"
    MAX = "max"
    # Logic on int 0/1 values
    NOT = "not"
    AND = "and"
    OR = "or"
    # Comparisons (destination is always int 0/1)
    CEQ = "ceq"
    CNE = "cne"
    CLT = "clt"
    CLE = "cle"
    CGT = "cgt"
    CGE = "cge"
    # Data movement
    MOV = "mov"
    LI = "li"  # load immediate
    ITOF = "itof"  # int -> float conversion
    FTOI = "ftoi"  # float -> int truncation (internal use)
    LOAD = "load"  # dest <- array[index]
    STORE = "store"  # array[index] <- value
    # Inter-cell systolic I/O
    SEND = "send"
    RECV = "recv"
    # Calls
    CALL = "call"
    # Terminators
    JMP = "jmp"
    BR = "br"  # conditional: (cond, true_label, false_label)
    RET = "ret"


TERMINATORS = {Opcode.JMP, Opcode.BR, Opcode.RET}

COMMUTATIVE = {
    Opcode.ADD,
    Opcode.MUL,
    Opcode.AND,
    Opcode.OR,
    Opcode.CEQ,
    Opcode.CNE,
    Opcode.MIN,
    Opcode.MAX,
}

COMPARISONS = {Opcode.CEQ, Opcode.CNE, Opcode.CLT, Opcode.CLE, Opcode.CGT, Opcode.CGE}

#: Instructions with side effects that must never be removed or reordered
#: relative to one another.
SIDE_EFFECTS = {Opcode.SEND, Opcode.RECV, Opcode.CALL, Opcode.STORE}


@dataclass
class Instr:
    """One three-address instruction.

    ``operands`` holds :class:`Value` inputs.  ``array`` is set for
    LOAD/STORE.  ``labels`` holds successor block names for JMP/BR.
    ``callee`` is set for CALL.
    """

    op: Opcode
    dest: Optional[VReg] = None
    operands: Tuple[Value, ...] = ()
    array: Optional[FrameArray] = None
    labels: Tuple[str, ...] = ()
    callee: Optional[str] = None

    def is_terminator(self) -> bool:
        return self.op in TERMINATORS

    def has_side_effects(self) -> bool:
        return self.op in SIDE_EFFECTS

    def uses(self) -> List[VReg]:
        """Virtual registers read by this instruction."""
        return [v for v in self.operands if isinstance(v, VReg)]

    def with_operands(self, operands: Tuple[Value, ...]) -> "Instr":
        return replace(self, operands=operands)

    def __str__(self) -> str:
        parts: List[str] = []
        if self.dest is not None:
            parts.append(f"{self.dest} = ")
        parts.append(self.op.value)
        if self.callee is not None:
            parts.append(f" {self.callee}")
        if self.array is not None:
            parts.append(f" {self.array}")
        if self.operands:
            parts.append(" " + ", ".join(str(v) for v in self.operands))
        if self.labels:
            parts.append(" -> " + ", ".join(self.labels))
        return "".join(parts)


def evaluate_constant(op: Opcode, values: List) -> Optional[object]:
    """Fold ``op`` applied to Python constant values; None if not foldable.

    Division by zero and modulo by zero are not folded — they are left to
    fail at simulation time exactly as the hardware would.
    """
    try:
        if op is Opcode.ADD:
            return values[0] + values[1]
        if op is Opcode.SUB:
            return values[0] - values[1]
        if op is Opcode.MUL:
            return values[0] * values[1]
        if op is Opcode.DIV:
            if values[1] == 0:
                return None
            if isinstance(values[0], int) and isinstance(values[1], int):
                return _truncated_div(values[0], values[1])
            return values[0] / values[1]
        if op is Opcode.MOD:
            if values[1] == 0:
                return None
            return _truncated_mod(values[0], values[1])
        if op is Opcode.NEG:
            return -values[0]
        if op is Opcode.ABS:
            return abs(values[0])
        if op is Opcode.SQRT:
            import math

            if values[0] < 0:
                return None  # the square-root unit traps
            return math.sqrt(values[0])
        if op is Opcode.MIN:
            return min(values[0], values[1])
        if op is Opcode.MAX:
            return max(values[0], values[1])
        if op is Opcode.NOT:
            return 0 if values[0] else 1
        if op is Opcode.AND:
            return 1 if (values[0] and values[1]) else 0
        if op is Opcode.OR:
            return 1 if (values[0] or values[1]) else 0
        if op is Opcode.CEQ:
            return 1 if values[0] == values[1] else 0
        if op is Opcode.CNE:
            return 1 if values[0] != values[1] else 0
        if op is Opcode.CLT:
            return 1 if values[0] < values[1] else 0
        if op is Opcode.CLE:
            return 1 if values[0] <= values[1] else 0
        if op is Opcode.CGT:
            return 1 if values[0] > values[1] else 0
        if op is Opcode.CGE:
            return 1 if values[0] >= values[1] else 0
        if op is Opcode.ITOF:
            return float(values[0])
        if op is Opcode.FTOI:
            return int(values[0])
        if op in (Opcode.MOV, Opcode.LI):
            return values[0]
    except (OverflowError, ValueError):
        return None
    return None


def _truncated_div(a: int, b: int) -> int:
    """C-style truncated integer division (the Warp ALU semantics)."""
    q = abs(a) // abs(b)
    return q if (a >= 0) == (b >= 0) else -q


def _truncated_mod(a: int, b: int) -> int:
    """C-style remainder: ``a - trunc(a/b)*b``."""
    return a - _truncated_div(a, b) * b
