"""Pass manager: runs the optimization pipeline and accounts for its work.

Besides orchestrating the passes, the manager counts *work units* — the
number of instructions each pass visited.  Those counters are the
deterministic cost metric consumed by the workstation-cluster simulator:
the paper's observation that "optimizing compilers for supercomputers are
particularly slow" is, in our reproduction, a measured property of this
very pipeline rather than an assumed constant.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Tuple

from ..ir.cfg import FunctionIR
from .copyprop import propagate_copies
from .cse import eliminate_common_subexpressions
from .dce import eliminate_dead_code
from .fold import fold_constants
from .gconst import propagate_constants_globally
from .licm import hoist_loop_invariants
from .simplify import simplify_control_flow

#: A pass takes a function and returns how many changes it made.
PassFn = Callable[[FunctionIR], int]

_PIPELINE: List[Tuple[str, PassFn]] = [
    ("simplify-cfg", simplify_control_flow),
    ("copy-propagation", propagate_copies),
    ("global-constant-propagation", propagate_constants_globally),
    ("constant-folding", fold_constants),
    ("local-cse", eliminate_common_subexpressions),
    ("loop-invariant-code-motion", hoist_loop_invariants),
    ("dead-code-elimination", eliminate_dead_code),
]


@dataclass
class PassStats:
    """Per-pass counters for one function's optimization."""

    runs: Dict[str, int] = field(default_factory=dict)
    changes: Dict[str, int] = field(default_factory=dict)
    instructions_visited: Dict[str, int] = field(default_factory=dict)
    rounds: int = 0

    def record(self, name: str, changed: int, visited: int) -> None:
        self.runs[name] = self.runs.get(name, 0) + 1
        self.changes[name] = self.changes.get(name, 0) + changed
        self.instructions_visited[name] = (
            self.instructions_visited.get(name, 0) + visited
        )

    @property
    def total_changes(self) -> int:
        return sum(self.changes.values())

    @property
    def work_units(self) -> int:
        """Instructions visited across all pass executions."""
        return sum(self.instructions_visited.values())

    def merge(self, other: "PassStats") -> None:
        for name, count in other.runs.items():
            self.runs[name] = self.runs.get(name, 0) + count
        for name, count in other.changes.items():
            self.changes[name] = self.changes.get(name, 0) + count
        for name, count in other.instructions_visited.items():
            self.instructions_visited[name] = (
                self.instructions_visited.get(name, 0) + count
            )
        self.rounds += other.rounds


class PassManager:
    """Runs the local-optimization pipeline at a given optimization level.

    - level 0: no optimization (unreachable-block removal only);
    - level 1: a single round of the pipeline;
    - level 2: rounds until a fixpoint (bounded by ``max_rounds``).
    """

    def __init__(self, opt_level: int = 2, max_rounds: int = 10):
        if opt_level not in (0, 1, 2):
            raise ValueError(f"unsupported optimization level {opt_level}")
        self.opt_level = opt_level
        self.max_rounds = max_rounds

    def run(self, function: FunctionIR) -> PassStats:
        stats = PassStats()
        if self.opt_level == 0:
            function.remove_unreachable_blocks()
            function.validate()
            return stats
        limit = 1 if self.opt_level == 1 else self.max_rounds
        for _ in range(limit):
            stats.rounds += 1
            round_changes = 0
            for name, pass_fn in _PIPELINE:
                visited = function.instruction_count()
                changed = pass_fn(function)
                stats.record(name, changed, visited)
                round_changes += changed
            if round_changes == 0:
                break
        function.validate()
        return stats
