"""Data-partitioned parallel assembler (the Katseff [9] baseline).

Katseff's 1988 study parallelized *assembly* by partitioning the input
among processors; the paper compares its own speedups against those
results (§4.2.2: "the speedup reported is about 6 for a large program and
4 for a small one; adding processors past 8 for the large program (5 for
the small one) yields no further decrease in elapsed time").

We reproduce that system faithfully in miniature: the function list is
partitioned across workers, each worker assembles its share
independently, and a sequential fixup pass merges the results.  The
returned accounting (per-worker work, sequential fixup work) is what the
cluster simulator prices to regenerate the comparison.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from .assembler import assemble_function, assembly_work_units
from .objformat import AssembledFunction, ObjectFunction


@dataclass
class ParallelAssemblyResult:
    """Assembled output plus the work profile of the parallel run."""

    functions: Dict[str, AssembledFunction] = field(default_factory=dict)
    worker_work: List[int] = field(default_factory=list)
    fixup_work: int = 0

    @property
    def critical_path_work(self) -> int:
        """Work on the slowest worker plus the sequential fixup."""
        slowest = max(self.worker_work, default=0)
        return slowest + self.fixup_work

    @property
    def sequential_work(self) -> int:
        return sum(self.worker_work) + self.fixup_work


def assemble_parallel(
    objects: List[ObjectFunction], workers: int
) -> ParallelAssemblyResult:
    """Assemble ``objects`` with ``workers`` data partitions.

    Partitioning is round-robin by descending size (longest processing
    time first), the same simple static balancing Katseff used.
    """
    if workers < 1:
        raise ValueError(f"need at least one worker, got {workers}")
    result = ParallelAssemblyResult(worker_work=[0] * workers)

    order = sorted(
        objects, key=lambda o: (-assembly_work_units(o), o.name)
    )
    for obj in order:
        # Give the next function to the least-loaded worker (LPT rule).
        target = min(range(workers), key=lambda w: result.worker_work[w])
        result.worker_work[target] += assembly_work_units(obj)
        result.functions[obj.name] = assemble_function(obj)

    # Sequential fixup: merge symbol tables and patch cross-references.
    result.fixup_work = len(objects) * 4 + sum(
        1 for obj in objects for block in obj.blocks
    )
    return result
