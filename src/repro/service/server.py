"""The compile service: admission, job lifecycle, shared-pool dispatch.

Architecture (one process, many threads)::

    submit ──▶ admission control ──▶ job queue (per-priority FIFO)
                 │ bounded depth           │
                 │ per-tenant cap          ▼
                 ▼                   runner threads (max_running)
               reject                 one ParallelCompiler per job
                                      phase 1 + cache serve + phase 4
                                           │ cache-miss tasks
                                           ▼
                                  FairShareQueue (tenant/job stride)
                                           │ waves of ≤ wave_size
                                           ▼
                                  dispatcher thread ─▶ ONE shared
                                  backend (warm pool, possibly
                                  supervised) ─▶ results routed back
                                  to their jobs by (section, function)

Every job is an ordinary :class:`~repro.driver.master.ParallelCompiler`
compile, run in a runner thread with a *dispatch seam* that detours its
cache-miss tasks through the shared fair-share queue instead of a
private backend.  Per-job state (WorkProfile, combiner, diagnostics)
therefore stays isolated by construction; only pool slots and the
artifact cache are shared.  The pool backend is used exclusively by the
dispatcher thread, one wave at a time, through the same
``run_tasks_streaming`` surface every other caller uses — wrapping the
pool in :class:`~repro.parallel.supervisor.SupervisedBackend` works
unchanged, and supervision (deadlines, hedging, quarantine) then applies
per wave across all tenants' tasks.

Backpressure is explicit: a full queue or a tenant over its in-flight
cap raises :class:`AdmissionError` (the socket protocol maps it to an
``ok: false`` reply with a ``reason``) — the service never buffers
unboundedly and never silently drops a job.
"""

from __future__ import annotations

import itertools
import json
import queue as queue_mod
import socketserver
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

from ..driver.function_master import FunctionTask, FunctionTaskResult
from ..driver.master import ParallelCompiler
from ..driver.results import CompilationResult
from ..lang.diagnostics import CompileError
from ..machine.warp_array import WarpArrayModel
from ..metrics.job_gantt import JobSpan, render_job_gantt, slot_utilization
from ..parallel.backend import stream_task_results
from .queue import (
    FairShareQueue,
    QueuedTask,
    priority_index,
    result_keys_for_task,
)

#: job lifecycle states (terminal: done/failed/cancelled)
JOB_STATES = ("queued", "running", "done", "failed", "cancelled")
_TERMINAL = frozenset(("done", "failed", "cancelled"))


class AdmissionError(Exception):
    """The service refused a job at the door (explicit backpressure)."""

    def __init__(self, message: str, reason: str):
        super().__init__(message)
        self.reason = reason  # "closed" | "backpressure" | "tenant-cap"


class JobCancelled(Exception):
    """Raised inside a job's compile when its cancellation is observed."""


class ServiceDispatchError(Exception):
    """The shared pool failed a wave; the affected jobs fail with this."""


#: spans the per-job Gantt is drawn from — see metrics.job_gantt
TaskSpan = JobSpan


@dataclass
class JobRecord:
    """Everything the service tracks about one compile job."""

    job_id: str
    tenant: str
    priority: str
    source: str
    filename: str
    opt_level: int
    cell_count: int
    submit_seq: int
    state: str = "queued"
    submitted_at: float = 0.0  # monotonic, relative to service start
    started_at: Optional[float] = None
    finished_at: Optional[float] = None
    error: Optional[str] = None
    result: Optional[CompilationResult] = None
    cancel_requested: bool = False
    tasks_total: int = 0
    tasks_done: int = 0
    cache_served: int = 0
    events: List[dict] = field(default_factory=list)
    #: results (or control messages) routed back from the dispatcher
    inbox: "queue_mod.Queue" = field(default_factory=queue_mod.Queue)

    @property
    def terminal(self) -> bool:
        return self.state in _TERMINAL

    def summary(self) -> dict:
        data = {
            "job": self.job_id,
            "tenant": self.tenant,
            "priority": self.priority,
            "state": self.state,
            "filename": self.filename,
            "submitted_at": round(self.submitted_at, 6),
            "started_at": (
                round(self.started_at, 6)
                if self.started_at is not None
                else None
            ),
            "finished_at": (
                round(self.finished_at, 6)
                if self.finished_at is not None
                else None
            ),
            "tasks_total": self.tasks_total,
            "tasks_done": self.tasks_done,
            "cache_served": self.cache_served,
            "error": self.error,
        }
        if self.result is not None:
            data["digest"] = self.result.digest
        return data


class _JobDispatch:
    """The dispatch seam handed to a job's ParallelCompiler: enqueue the
    cache-miss tasks into the shared fair-share queue, then yield results
    as the dispatcher routes them back."""

    def __init__(self, service: "CompileService", job: JobRecord):
        self._service = service
        self._job = job
        self._last_task_count: Optional[int] = None

    @property
    def effective_worker_count(self) -> int:
        workers = self._service.worker_count
        if self._last_task_count is None:
            return workers
        return max(1, min(workers, self._last_task_count))

    def __call__(
        self, tasks: List[FunctionTask]
    ) -> Iterator[FunctionTaskResult]:
        keyed = [(task, result_keys_for_task(task)) for task in tasks]
        expected = sum(len(keys) for _, keys in keyed)
        self._last_task_count = len(tasks)
        self._service._submit_tasks(self._job, keyed, expected)
        received = 0
        while received < expected:
            kind, payload = self._job.inbox.get()
            if kind == "result":
                received += 1
                yield payload
            elif kind == "cancel":
                raise JobCancelled(self._job.job_id)
            else:  # "error"
                raise ServiceDispatchError(payload)


class CompileService:
    """A long-lived, multi-tenant compile service over one shared pool.

    ``backend`` may be any :class:`~repro.parallel.backend
    .ExecutionBackend` — typically a
    :class:`~repro.parallel.warm_pool.WarmPoolBackend`, optionally
    wrapped in :class:`~repro.parallel.supervisor.SupervisedBackend`.
    A caller-provided backend (and cache) is *borrowed*: the service
    never shuts it down.  With ``backend=None`` the service builds and
    owns a warm pool of ``max_workers``.
    """

    def __init__(
        self,
        backend=None,
        cache=None,
        *,
        max_workers: Optional[int] = None,
        max_queued: int = 32,
        max_running: int = 4,
        per_tenant_inflight: int = 8,
        tenant_weights: Optional[Dict[str, float]] = None,
        wave_size: Optional[int] = None,
        keep_finished: int = 256,
        max_spans: int = 4096,
        cost_model=None,
        speculation: bool = False,
        speculation_inflight: int = 2,
        speculation_headroom: int = 2,
    ):
        if max_queued < 1:
            raise ValueError(f"max_queued must be positive, got {max_queued}")
        if max_running < 1:
            raise ValueError(
                f"max_running must be positive, got {max_running}"
            )
        if per_tenant_inflight < 1:
            raise ValueError(
                "per_tenant_inflight must be positive, "
                f"got {per_tenant_inflight}"
            )
        if keep_finished < 1:
            raise ValueError(
                f"keep_finished must be positive, got {keep_finished}"
            )
        self.owns_backend = backend is None
        if backend is None:
            from ..parallel.warm_pool import WarmPoolBackend

            backend = WarmPoolBackend(max_workers=max_workers)
        self._backend = backend
        self.worker_count = max(1, getattr(backend, "worker_count", 1))
        self.wave_size = (
            wave_size if wave_size is not None else self.worker_count * 2
        )
        if self.wave_size < 1:
            raise ValueError(
                f"wave_size must be positive, got {self.wave_size}"
            )
        self._cache = cache
        self.max_queued = max_queued
        self.max_running = max_running
        self.per_tenant_inflight = per_tenant_inflight
        self.keep_finished = keep_finished
        self.max_spans = max_spans

        #: learned cost model (repro.predict.observe.CostModel) or None
        #: for the static §4.3 hints everywhere.  When set it becomes
        #: the cost provider for the fair queue and for every backend in
        #: the wrapper chain that exposes the seam, and it is fed
        #: observations: by the supervisor (winning attempt only) when
        #: one is in the chain, else from wave spans here.
        self.cost_model = cost_model
        self._observe_spans = False
        if cost_model is not None:
            self._observe_spans = True
            node, seen = backend, set()
            while node is not None and id(node) not in seen:
                seen.add(id(node))
                own = getattr(node, "__dict__", {})
                if "cost_provider" in own:
                    node.cost_provider = cost_model
                if "cost_observer" in own:
                    node.cost_observer = cost_model.observe_task
                    # the supervisor measures the winning attempt
                    # precisely; span-based recording would double count
                    self._observe_spans = False
                node = own.get("inner")

        self.fair_queue = FairShareQueue(
            tenant_weights, cost_provider=cost_model
        )
        self._cond = threading.Condition()
        self._jobs: "OrderedDict[str, JobRecord]" = OrderedDict()
        self._job_ids = itertools.count(1)
        self._submit_seq = itertools.count()
        self._accepting = True
        self._closing = False
        self._closed = False
        self._t0 = time.monotonic()
        #: completed task spans (bounded), for Gantt/utilization export
        self.spans: List[TaskSpan] = []
        self.stats = {
            "submitted": 0,
            "rejected": 0,
            "done": 0,
            "failed": 0,
            "cancelled": 0,
            "waves": 0,
            "tasks_dispatched": 0,
            "busy_worker_seconds": 0.0,
        }
        self._speculation = None
        if speculation:
            from ..predict.watch import SpeculationManager

            self._speculation = SpeculationManager(
                self,
                max_inflight=speculation_inflight,
                queue_headroom=speculation_headroom,
            )
        self._dispatcher = threading.Thread(
            target=self._dispatch_loop, name="warpcc-dispatcher", daemon=True
        )
        self._runners = [
            threading.Thread(
                target=self._runner_loop,
                name=f"warpcc-runner-{i}",
                daemon=True,
            )
            for i in range(max_running)
        ]
        self._dispatcher.start()
        for runner in self._runners:
            runner.start()

    # -- clock ---------------------------------------------------------

    def _now(self) -> float:
        """Monotonic seconds since the service started."""
        return time.monotonic() - self._t0

    # -- submission / admission ----------------------------------------

    def submit(
        self,
        source: str,
        *,
        tenant: str = "default",
        filename: str = "<input>",
        priority: str = "normal",
        opt_level: int = 2,
        cells: int = 10,
    ) -> str:
        """Admit one compile job; returns its id or raises
        :class:`AdmissionError` (explicit backpressure, never buffering
        beyond the configured bounds)."""
        priority_index(priority)  # validate early, outside the lock
        with self._cond:
            if not self._accepting:
                raise AdmissionError(
                    "service is shutting down", reason="closed"
                )
            queued = sum(
                1 for job in self._jobs.values() if job.state == "queued"
            )
            if queued >= self.max_queued:
                self.stats["rejected"] += 1
                raise AdmissionError(
                    f"queue full ({queued} job(s) queued, "
                    f"max {self.max_queued}); retry later",
                    reason="backpressure",
                )
            inflight = sum(
                1
                for job in self._jobs.values()
                if job.tenant == tenant and not job.terminal
            )
            if inflight >= self.per_tenant_inflight:
                self.stats["rejected"] += 1
                raise AdmissionError(
                    f"tenant {tenant!r} already has {inflight} job(s) "
                    f"in flight (cap {self.per_tenant_inflight})",
                    reason="tenant-cap",
                )
            job = JobRecord(
                job_id=f"j{next(self._job_ids)}",
                tenant=tenant,
                priority=priority,
                source=source,
                filename=filename,
                opt_level=opt_level,
                cell_count=cells,
                submit_seq=next(self._submit_seq),
                submitted_at=self._now(),
            )
            self._jobs[job.job_id] = job
            self.stats["submitted"] += 1
            self._event(job, "queued")
            self._cond.notify_all()
            return job.job_id

    def _event(self, job: JobRecord, name: str, **extra) -> None:
        """Append one lifecycle event (caller holds the lock)."""
        record = {
            "seq": len(job.events),
            "time": round(self._now(), 6),
            "event": name,
            "job": job.job_id,
        }
        record.update(extra)
        job.events.append(record)

    # -- job runners ---------------------------------------------------

    def _next_startable(self) -> Optional[JobRecord]:
        """Best queued job: priority class first, then submission order
        (caller holds the lock)."""
        best: Optional[JobRecord] = None
        for job in self._jobs.values():
            if job.state != "queued":
                continue
            if best is None or (
                priority_index(job.priority),
                job.submit_seq,
            ) < (priority_index(best.priority), best.submit_seq):
                best = job
        return best

    def _runner_loop(self) -> None:
        while True:
            with self._cond:
                job = self._next_startable()
                while job is None and not self._closing:
                    self._cond.wait()
                    job = self._next_startable()
                if job is None:
                    return
                if job.cancel_requested:
                    self._finish(job, "cancelled")
                    continue
                job.state = "running"
                job.started_at = self._now()
                self._event(job, "started")
                self._cond.notify_all()
            self._run_job(job)

    def _run_job(self, job: JobRecord) -> None:
        dispatch = _JobDispatch(self, job)
        compiler = ParallelCompiler(
            array=WarpArrayModel(cell_count=job.cell_count),
            opt_level=job.opt_level,
            cache=self._cache,
            dispatch=dispatch,
        )
        try:
            result = compiler.compile(job.source, filename=job.filename)
        except JobCancelled:
            with self._cond:
                self._finish(job, "cancelled")
        except CompileError as error:
            with self._cond:
                job.error = "\n".join(
                    d.render() for d in error.diagnostics
                )
                self._finish(job, "failed")
        except ServiceDispatchError as error:
            with self._cond:
                job.error = f"pool dispatch failed: {error}"
                self._finish(job, "failed")
        except Exception as error:  # noqa: BLE001 - job isolation barrier
            with self._cond:
                job.error = f"{type(error).__name__}: {error}"
                self._finish(job, "failed")
        else:
            with self._cond:
                # A cancel that raced the last result loses: the work is
                # done and bit-identical, so completing wins.
                job.result = result
                job.cache_served = result.profile.artifact_cache_hits()
                self._finish(job, "done", digest=result.digest)

    def _finish(self, job: JobRecord, state: str, **extra) -> None:
        """Move a job to a terminal state (caller holds the lock)."""
        if job.terminal:
            return
        job.state = state
        job.finished_at = self._now()
        self.stats[state] += 1
        self._event(job, state, **extra)
        self._evict_finished()
        self._cond.notify_all()

    def _evict_finished(self) -> None:
        terminal = [
            job_id
            for job_id, job in self._jobs.items()
            if job.terminal
        ]
        excess = len(terminal) - self.keep_finished
        for job_id in terminal[:max(0, excess)]:
            del self._jobs[job_id]

    # -- shared-pool dispatcher ----------------------------------------

    def _submit_tasks(self, job: JobRecord, keyed, expected: int) -> None:
        """Called from a job thread: feed its tasks to the fair queue."""
        with self._cond:
            if job.cancel_requested:
                raise JobCancelled(job.job_id)
            job.tasks_total = expected
            self.fair_queue.enqueue(
                job.job_id,
                job.tenant,
                priority_index(job.priority),
                keyed,
            )
            self._event(job, "tasks_queued", tasks=expected)
            self._cond.notify_all()

    def _dispatch_loop(self) -> None:
        while True:
            with self._cond:
                while not self.fair_queue.has_pending():
                    active = any(
                        not job.terminal for job in self._jobs.values()
                    )
                    if self._closing and not active:
                        return
                    self._cond.wait()
                wave = self.fair_queue.next_wave(self.wave_size)
            if wave:
                self._run_wave(wave)

    def _run_wave(self, wave: List[QueuedTask]) -> None:
        tasks = [queued.task for queued in wave]
        route: Dict[Tuple[str, str], Tuple[str, QueuedTask]] = {}
        for queued in wave:
            for key in queued.result_keys:
                route[key] = (queued.job_id, queued)
        wave_start = self._now()
        error: Optional[BaseException] = None
        try:
            for result in stream_task_results(self._backend, tasks):
                self._route_result(route, result, wave_start)
        except BaseException as exc:  # noqa: BLE001 - isolate wave failure
            error = exc
        wave_end = self._now()
        with self._cond:
            self.stats["waves"] += 1
            self.stats["tasks_dispatched"] += len(tasks)
            self.stats["busy_worker_seconds"] += (
                wave_end - wave_start
            ) * min(len(tasks), self.worker_count)
            if route:
                # Keys never routed: the wave died (pool failure) or the
                # backend under-delivered.  Fail every involved job.
                message = (
                    repr(error)
                    if error is not None
                    else f"backend returned no result for {sorted(route)}"
                )
                for job_id in {job_id for job_id, _ in route.values()}:
                    job = self._jobs.get(job_id)
                    if job is not None and not job.terminal:
                        job.inbox.put(("error", message))
                self._cond.notify_all()

    def _route_result(
        self,
        route: Dict[Tuple[str, str], Tuple[str, QueuedTask]],
        result: FunctionTaskResult,
        wave_start: float,
    ) -> None:
        key = (result.section_name, result.function_name)
        now = self._now()
        observed: Optional[FunctionTask] = None
        try:
            with self._cond:
                entry = route.pop(key, None)
                if entry is None:
                    return  # late duplicate or unknown — drop
                job_id, queued = entry
                if (
                    self._observe_spans
                    and queued.task.function_name is not None
                ):
                    observed = queued.task
                job = self._jobs.get(job_id)
                if job is None or job.terminal:
                    return
                if len(self.spans) < self.max_spans:
                    self.spans.append(
                        TaskSpan(
                            job_id=job_id,
                            label=f"{key[0]}.{key[1]}",
                            start=wave_start,
                            end=now,
                        )
                    )
                if job.cancel_requested:
                    return  # the cancel sentinel is already in the inbox
                job.tasks_done += 1
                self._event(
                    job, "function_done", function=f"{key[0]}.{key[1]}"
                )
                job.inbox.put(("result", result))
                self._cond.notify_all()
        finally:
            # Feed the learned cost model outside the lock (it hits
            # disk).  Span timing starts at the wave, so queueing within
            # the wave is included — an upper bound; a supervised
            # backend replaces this with exact winning-attempt timing.
            if observed is not None and self.cost_model is not None:
                try:
                    self.cost_model.observe_task(
                        observed, max(now - wave_start, 0.0)
                    )
                except Exception:
                    pass

    # -- queries -------------------------------------------------------

    def job(self, job_id: str) -> JobRecord:
        with self._cond:
            job = self._jobs.get(job_id)
            if job is None:
                raise KeyError(f"unknown job {job_id!r}")
            return job

    def wait(self, job_id: str, timeout: Optional[float] = None) -> JobRecord:
        """Block until the job reaches a terminal state."""
        deadline = (
            time.monotonic() + timeout if timeout is not None else None
        )
        with self._cond:
            job = self._jobs.get(job_id)
            if job is None:
                raise KeyError(f"unknown job {job_id!r}")
            while not job.terminal:
                remaining = None
                if deadline is not None:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        raise TimeoutError(
                            f"job {job_id} still {job.state} "
                            f"after {timeout}s"
                        )
                self._cond.wait(remaining)
            return job

    def events_since(
        self,
        job_id: str,
        index: int,
        timeout: Optional[float] = None,
    ) -> Tuple[List[dict], bool]:
        """(new events after ``index``, job-is-terminal) — blocks until
        there is something new, the job ends, or ``timeout`` passes."""
        deadline = (
            time.monotonic() + timeout if timeout is not None else None
        )
        with self._cond:
            job = self._jobs.get(job_id)
            if job is None:
                raise KeyError(f"unknown job {job_id!r}")
            while len(job.events) <= index and not job.terminal:
                remaining = None
                if deadline is not None:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        break
                self._cond.wait(remaining)
            return list(job.events[index:]), job.terminal

    def cancel(self, job_id: str) -> bool:
        """Cancel a job.  Queued jobs cancel immediately; running jobs
        are interrupted at their next dispatch boundary (results already
        computed are discarded).  Returns False for terminal jobs."""
        with self._cond:
            job = self._jobs.get(job_id)
            if job is None:
                raise KeyError(f"unknown job {job_id!r}")
            if job.terminal:
                return False
            job.cancel_requested = True
            self.fair_queue.discard_job(job_id)
            if job.state == "queued":
                self._finish(job, "cancelled")
            else:
                job.inbox.put(("cancel", None))
            self._cond.notify_all()
            return True

    def jobs_summary(self) -> List[dict]:
        with self._cond:
            return [job.summary() for job in self._jobs.values()]

    # -- watch-mode speculation ----------------------------------------

    @property
    def speculation(self):
        """The SpeculationManager, or None when speculation is off."""
        return self._speculation

    def watch_update(
        self,
        source: str,
        *,
        watch: str = "default",
        filename: str = "<watch>",
        opt_level: int = 2,
        cells: int = 10,
    ) -> dict:
        """One watch-mode edit: fingerprint-diff the module against the
        watch key's previous snapshot and (maybe) launch a speculative
        ``batch``-priority job under the speculation tenant.  Returns
        the outcome document; never raises for speculation failures."""
        if self._speculation is None:
            return {
                "watch": watch,
                "speculation": False,
                "job": None,
                "dirty": 0,
                "functions": [],
                "superseded": False,
                "reason": "speculation-disabled",
            }
        return self._speculation.update(
            source,
            watch=watch,
            filename=filename,
            opt_level=opt_level,
            cells=cells,
        )

    def service_stats(self) -> dict:
        with self._cond:
            elapsed = self._now()
            stats = dict(self.stats)
            stats["busy_worker_seconds"] = round(
                stats["busy_worker_seconds"], 6
            )
            counts: Dict[str, int] = {}
            for job in self._jobs.values():
                counts[job.state] = counts.get(job.state, 0) + 1
            stats.update(
                {
                    "elapsed": round(elapsed, 6),
                    "workers": self.worker_count,
                    "wave_size": self.wave_size,
                    "jobs": counts,
                    "pending_tasks": self.fair_queue.pending_tasks(),
                    "utilization": round(self.pool_utilization(), 4),
                    "accepting": self._accepting,
                }
            )
            if self._speculation is not None:
                stats["speculation"] = self._speculation.stats()
            if self.cost_model is not None:
                stats["cost_model"] = self.cost_model.snapshot()
            return stats

    def pool_utilization(self) -> float:
        """Busy worker-seconds over elapsed capacity (0 when idle)."""
        elapsed = self._now()
        if elapsed <= 0:
            return 0.0
        return min(
            1.0,
            self.stats["busy_worker_seconds"]
            / (self.worker_count * elapsed),
        )

    def gantt(
        self, job_id: Optional[str] = None, width: int = 72
    ) -> str:
        """Per-job Gantt over the shared pool's slots (see
        :mod:`repro.metrics.job_gantt`)."""
        with self._cond:
            spans = (
                [s for s in self.spans if s.job_id == job_id]
                if job_id is not None
                else list(self.spans)
            )
        return render_job_gantt(
            spans, width=width, slots=self.worker_count
        )

    def slot_utilization(self) -> float:
        """Utilization derived from the recorded task spans."""
        with self._cond:
            spans = list(self.spans)
        return slot_utilization(spans, slots=self.worker_count)

    # -- lifecycle -----------------------------------------------------

    def drain(self, timeout: Optional[float] = None) -> None:
        """Stop admitting; wait until every accepted job is terminal."""
        deadline = (
            time.monotonic() + timeout if timeout is not None else None
        )
        with self._cond:
            self._accepting = False
            self._cond.notify_all()
            while any(not job.terminal for job in self._jobs.values()):
                remaining = None
                if deadline is not None:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        raise TimeoutError("drain timed out")
                self._cond.wait(remaining)

    def close(self, drain: bool = True, timeout: Optional[float] = None) -> None:
        """Graceful shutdown: optionally drain, stop the worker threads,
        and shut the backend down only if this service owns it."""
        if self._closed:
            return
        with self._cond:
            self._accepting = False
            if not drain:
                for job in list(self._jobs.values()):
                    if not job.terminal and not job.cancel_requested:
                        job.cancel_requested = True
                        self.fair_queue.discard_job(job.job_id)
                        if job.state == "queued":
                            self._finish(job, "cancelled")
                        else:
                            job.inbox.put(("cancel", None))
            self._cond.notify_all()
        self.drain(timeout=timeout)
        with self._cond:
            self._closing = True
            self._cond.notify_all()
        self._dispatcher.join(timeout=10)
        for runner in self._runners:
            runner.join(timeout=10)
        self._closed = True
        if self.owns_backend:
            shutdown = getattr(self._backend, "shutdown", None)
            if shutdown is not None:
                shutdown()

    def __enter__(self) -> "CompileService":
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> bool:
        self.close(drain=exc_type is None)
        return False


# ---------------------------------------------------------------------------
# JSON-lines socket protocol.
#
# One request per line; the reply is one JSON line, except "wait" with
# "stream": true, which sends one {"event": ...} line per job event
# before the final {"ok": true, ...} line.  Errors never close the
# server: they become {"ok": false, "error": ..., "reason": ...}.
# ---------------------------------------------------------------------------

PROTOCOL_VERSION = 1


def _job_detail(service: CompileService, job: JobRecord) -> dict:
    detail = job.summary()
    if job.result is not None:
        detail["report"] = job.result.to_dict()
        detail["diagnostics"] = job.result.diagnostics_text
    return detail


#: Hard bound on one request line.  Modules are a few KB of source; a
#: client sending more than this per line is buggy or hostile, and
#: either way the server refuses to buffer it.
MAX_REQUEST_BYTES = 16 * 1024 * 1024


class _ServiceRequestHandler(socketserver.StreamRequestHandler):
    """One thread per connection; a connection may issue many requests.

    Framing violations — an oversized line, a stream that dies mid-line,
    bytes that are not JSON — get one machine-readable
    ``{"ok": false, "reason": ...}`` reply and the connection is
    dropped; the framing state is unknowable after that, so continuing
    to parse would be guessing.  Application errors reply with the same
    shape but keep the connection.  Either way the handler thread
    survives: a client can never take a worker thread down with it.
    """

    def handle(self) -> None:
        from ..fabric.wire import ProtocolError, decode_frame, read_frame_line

        while True:
            try:
                raw = read_frame_line(self.rfile, MAX_REQUEST_BYTES)
            except ProtocolError as error:
                self._reply(ok=False, error=str(error), reason=error.reason)
                return  # framing is gone; drop the connection
            if raw is None:
                return  # clean EOF
            if not raw.strip():
                continue
            try:
                request = decode_frame(raw)
            except ProtocolError as error:
                self._reply(ok=False, error=str(error), reason=error.reason)
                return
            try:
                self._dispatch(request)
            except BrokenPipeError:  # pragma: no cover - client went away
                return
            except Exception as error:  # noqa: BLE001 - protocol barrier
                self._reply(
                    ok=False,
                    error=f"{type(error).__name__}: {error}",
                    reason="bad-request",
                )

    def _reply(self, **payload) -> None:
        try:
            self.wfile.write(
                (json.dumps(payload, sort_keys=True) + "\n").encode("utf-8")
            )
            self.wfile.flush()
        except (OSError, ValueError):  # pragma: no cover - client gone
            pass

    def _dispatch(self, request: dict) -> None:
        service: CompileService = self.server.service  # type: ignore[attr-defined]
        op = request.get("op")
        if op == "ping":
            self._reply(
                ok=True, service="warpcc", protocol=PROTOCOL_VERSION
            )
        elif op == "submit":
            try:
                job_id = service.submit(
                    request["source"],
                    tenant=request.get("tenant", "default"),
                    filename=request.get("filename", "<input>"),
                    priority=request.get("priority", "normal"),
                    opt_level=int(request.get("opt_level", 2)),
                    cells=int(request.get("cells", 10)),
                )
            except AdmissionError as error:
                self._reply(ok=False, error=str(error), reason=error.reason)
            else:
                self._reply(ok=True, job=job_id, state="queued")
        elif op == "status":
            job_id = request.get("job")
            if job_id is None:
                payload = {
                    "ok": True,
                    "stats": service.service_stats(),
                    "jobs": service.jobs_summary(),
                }
                if request.get("gantt"):
                    payload["gantt"] = service.gantt(
                        width=int(request.get("width", 72))
                    )
                self._reply(**payload)
            else:
                try:
                    job = service.job(job_id)
                except KeyError as error:
                    self._reply(
                        ok=False, error=str(error), reason="unknown-job"
                    )
                    return
                payload = {"ok": True, "job": _job_detail(service, job)}
                if request.get("gantt"):
                    payload["gantt"] = service.gantt(
                        job_id, width=int(request.get("width", 72))
                    )
                self._reply(**payload)
        elif op == "wait":
            job_id = request.get("job")
            try:
                if request.get("stream"):
                    index = 0
                    while True:
                        events, terminal = service.events_since(
                            job_id, index, timeout=0.5
                        )
                        for event in events:
                            self._reply(ok=True, event=event)
                        index += len(events)
                        if terminal and not events:
                            break
                        if terminal:
                            # flush any events logged with the final state
                            events, _ = service.events_since(
                                job_id, index, timeout=0
                            )
                            for event in events:
                                self._reply(ok=True, event=event)
                            index += len(events)
                            break
                job = service.wait(
                    job_id, timeout=request.get("timeout")
                )
            except KeyError as error:
                self._reply(ok=False, error=str(error), reason="unknown-job")
            except TimeoutError as error:
                self._reply(ok=False, error=str(error), reason="timeout")
            else:
                self._reply(ok=True, job=_job_detail(service, job))
        elif op == "watch":
            source = request.get("source")
            if source is None:
                self._reply(
                    ok=False,
                    error="watch requires a source field",
                    reason="bad-request",
                )
                return
            outcome = service.watch_update(
                source,
                watch=str(request.get("watch", "default")),
                filename=request.get("filename", "<watch>"),
                opt_level=int(request.get("opt_level", 2)),
                cells=int(request.get("cells", 10)),
            )
            self._reply(ok=True, **outcome)
        elif op == "watch-status":
            manager = service.speculation
            self._reply(
                ok=True,
                enabled=manager is not None,
                stats=manager.stats() if manager is not None else {},
            )
        elif op == "cancel":
            try:
                cancelled = service.cancel(request.get("job"))
            except KeyError as error:
                self._reply(ok=False, error=str(error), reason="unknown-job")
            else:
                self._reply(ok=True, cancelled=cancelled)
        elif op == "shutdown":
            drain = bool(request.get("drain", True))
            self._reply(ok=True, draining=drain)
            self.server.request_shutdown(drain)  # type: ignore[attr-defined]
        else:
            self._reply(
                ok=False, error=f"unknown op {op!r}", reason="bad-request"
            )


class ServiceSocketServer(socketserver.ThreadingTCPServer):
    """``warpcc serve``: the JSON-lines protocol endpoint.

    Binds localhost by default (the service trusts its peers exactly as
    much as any local compiler invocation).  ``port=0`` picks a free
    ephemeral port; read :attr:`address` after construction.
    """

    daemon_threads = True
    allow_reuse_address = True

    def __init__(
        self,
        service: CompileService,
        host: str = "127.0.0.1",
        port: int = 0,
    ):
        super().__init__((host, port), _ServiceRequestHandler)
        self.service = service
        self._shutdown_drain = True
        self._shutdown_requested = threading.Event()

    @property
    def address(self) -> str:
        host, port = self.server_address[:2]
        return f"{host}:{port}"

    def request_shutdown(self, drain: bool = True) -> None:
        """Ask the serve loop to stop (callable from handler threads)."""
        self._shutdown_drain = drain
        self._shutdown_requested.set()
        threading.Thread(target=self.shutdown, daemon=True).start()

    def serve_until_shutdown(self) -> None:
        """Serve requests until a ``shutdown`` op (or KeyboardInterrupt),
        then drain the service and close everything."""
        try:
            self.serve_forever(poll_interval=0.1)
        except KeyboardInterrupt:  # pragma: no cover - interactive only
            pass
        finally:
            self.server_close()
            self.service.close(drain=self._shutdown_drain)
