"""Binary download-module format: round-trip and robustness."""

import pytest

from repro.asmlink.download import module_digest
from repro.asmlink.encode import (
    FormatError,
    decode_module,
    encode_module,
    read_module,
    write_module,
)
from repro.driver.sequential import SequentialCompiler
from repro.warpsim.array_runner import run_module

from helpers import echo_module, wrap_function

SOURCE = echo_module(
    "  var i: int; acc: float; a: array[8] of float;\n"
    "  begin\n"
    "    for i := 0 to 7 do a[i] := x + i; end;\n"
    "    acc := 0.0;\n"
    "    for i := 0 to 7 do acc := acc + a[i]; end;\n"
    "    return acc;\n"
    "  end",
    2,
)

MULTI_SECTION = """
module two
section a (cells 0..1)
  function helper(v: float) : float begin return v + 1.0; end
  function main()
  var v: float; k: int;
  begin for k := 1 to 2 do receive(v); send(helper(v)); end; end
end
section b (cells 2..2)
  function main()
  var v: float; k: int;
  begin for k := 1 to 2 do receive(v); send(v * 2.0); end; end
end
end
"""


@pytest.fixture(scope="module")
def compiled():
    return SequentialCompiler().compile(SOURCE)


@pytest.fixture(scope="module")
def compiled_multi():
    return SequentialCompiler().compile(MULTI_SECTION)


class TestRoundTrip:
    def test_digest_preserved(self, compiled):
        data = encode_module(compiled.download)
        decoded = decode_module(data)
        assert module_digest(decoded) == compiled.digest

    def test_multi_section_digest_preserved(self, compiled_multi):
        decoded = decode_module(encode_module(compiled_multi.download))
        assert module_digest(decoded) == compiled_multi.digest

    def test_decoded_module_executes_identically(self, compiled):
        decoded = decode_module(encode_module(compiled.download))
        original = run_module(compiled.download, [1.0, 2.0])
        replayed = run_module(decoded, [1.0, 2.0])
        assert replayed.outputs == original.outputs
        assert replayed.cycles == original.cycles

    def test_replicated_sections_share_one_program(self, compiled_multi):
        decoded = decode_module(encode_module(compiled_multi.download))
        assert decoded.cell_programs[0] is decoded.cell_programs[1]
        assert decoded.cell_programs[2] is not decoded.cell_programs[0]

    def test_file_round_trip(self, compiled, tmp_path):
        path = tmp_path / "module.warp"
        size = write_module(compiled.download, str(path))
        assert path.stat().st_size == size
        loaded = read_module(str(path))
        assert module_digest(loaded) == compiled.digest

    def test_encoding_deterministic(self, compiled):
        assert encode_module(compiled.download) == encode_module(
            compiled.download
        )


class TestRobustness:
    def test_bad_magic_rejected(self):
        with pytest.raises(FormatError, match="magic"):
            decode_module(b"NOPE" + b"\x00" * 32)

    def test_bad_version_rejected(self, compiled):
        data = bytearray(encode_module(compiled.download))
        data[4] = 0xFF
        with pytest.raises(FormatError, match="version"):
            decode_module(bytes(data))

    def test_truncation_rejected(self, compiled):
        data = encode_module(compiled.download)
        with pytest.raises(FormatError):
            decode_module(data[: len(data) // 2])

    def test_size_reasonable(self, compiled):
        """The binary form is smaller than the textual digest."""
        data = encode_module(compiled.download)
        assert len(data) < len(compiled.digest.encode("utf-8"))


class TestSeededRoundTripProperty:
    """Seeded generator property: for every size class, the binary
    encoding is lossless down to the module digest — the invariant the
    link/module cache and the download path both lean on."""

    @pytest.mark.parametrize(
        "size_class", ["tiny", "small", "medium", "large", "huge"]
    )
    def test_decode_encode_preserves_module_digest(self, size_class):
        from repro.fuzz import config_for_size_class, generate_program

        config = config_for_size_class(size_class)
        seeds = range(5) if size_class in ("large", "huge") else range(12)
        for seed in seeds:
            source = generate_program(seed, config).source
            compiled = SequentialCompiler().compile(source)
            decoded = decode_module(encode_module(compiled.download))
            assert module_digest(decoded) == compiled.digest, (
                f"{size_class} seed {seed}"
            )
            assert decoded.cells_used == compiled.download.cells_used
            assert decoded.diagnostics_text == (
                compiled.download.diagnostics_text
            )
