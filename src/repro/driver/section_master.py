"""Section masters: recombination of per-function results.

"When code has been generated for each function of the section, the
section master combines the results so that the parallel compiler
produces the same input for the assembly phase as the sequential
compiler.  Furthermore, the section master process is responsible to
combine the diagnostic output" (§3.2).

Function masters finish in arbitrary order; the section master restores
*source order*, which is what makes the parallel compiler's output
bit-identical to the sequential one.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from ..asmlink.objformat import ObjectFunction
from ..lang import ast_nodes as ast
from .function_master import FunctionTaskResult
from .results import FunctionReport


class SectionCombineError(Exception):
    """Results do not cover the section's functions exactly."""


@dataclass
class CombinedSection:
    """A section's recombined compilation output, in source order."""

    section_name: str
    objects: List[ObjectFunction] = field(default_factory=list)
    reports: List[FunctionReport] = field(default_factory=list)
    diagnostics: List[str] = field(default_factory=list)
    #: work proxy for the recombination itself (drives the cost model)
    combine_work: int = 0


def combine_section_results(
    section: ast.Section, results: List[FunctionTaskResult]
) -> CombinedSection:
    """Restore source order and merge diagnostics for one section."""
    by_name: Dict[str, FunctionTaskResult] = {}
    for result in results:
        if result.section_name != section.name:
            raise SectionCombineError(
                f"result for {result.section_name}.{result.function_name} "
                f"delivered to section master {section.name!r}"
            )
        if result.function_name in by_name:
            raise SectionCombineError(
                f"duplicate result for function {result.function_name!r}"
            )
        by_name[result.function_name] = result

    expected = [fn.name for fn in section.functions]
    missing = [name for name in expected if name not in by_name]
    if missing:
        raise SectionCombineError(
            f"section {section.name!r} missing results for {missing}"
        )
    extra = [name for name in by_name if name not in expected]
    if extra:
        raise SectionCombineError(
            f"section {section.name!r} got unexpected results for {extra}"
        )

    combined = CombinedSection(section_name=section.name)
    for name in expected:
        result = by_name[name]
        combined.objects.append(result.obj)
        combined.reports.append(result.report)
        combined.diagnostics.extend(result.diagnostics)
        combined.combine_work += result.obj.bundle_count() + 1
    return combined
