"""The service-facing CLI surface: compile --json, submit, status."""

import json
import threading

import pytest

from repro.cli import main
from repro.parallel.local import SerialBackend
from repro.service import CompileService, ServiceSocketServer

GOOD = """
module cli_service_demo
section s (cells 0..0)
  function main()
  var v: float; k: int;
  begin
    for k := 1 to 3 do receive(v); send(v * 2.0); end;
  end
end
end
"""

BAD = """
module broken
section s (cells 0..0)
  function main() begin undeclared := 1; end
end
end
"""


@pytest.fixture
def good_file(tmp_path):
    path = tmp_path / "good.w2"
    path.write_text(GOOD)
    return str(path)


@pytest.fixture
def endpoint():
    service = CompileService(SerialBackend(), max_running=2)
    server = ServiceSocketServer(service)
    thread = threading.Thread(
        target=server.serve_until_shutdown, daemon=True
    )
    thread.start()
    try:
        yield server.address
    finally:
        server.request_shutdown(drain=False)
        thread.join(timeout=30.0)


class TestCompileJson:
    def test_emits_machine_readable_report(self, good_file, capsys):
        assert main(["compile", good_file, "--json"]) == 0
        document = json.loads(capsys.readouterr().out)
        assert document["ok"] is True
        assert document["module"] == "cli_service_demo"
        assert document["digest"].startswith("download-module")
        functions = document["profile"]["functions"]
        assert [f["name"] for f in functions] == ["main"]
        assert functions[0]["work_units"] > 0

    def test_parallel_json_includes_cache_counters(
        self, good_file, tmp_path, capsys
    ):
        code = main([
            "compile", good_file, "--json", "--parallel", "--jobs", "1",
            "--cache-dir", str(tmp_path / "cache"),
        ])
        assert code == 0
        document = json.loads(capsys.readouterr().out)
        assert document["artifact_cache"]["misses"] >= 1

    def test_compile_error_is_json_too(self, tmp_path, capsys):
        path = tmp_path / "bad.w2"
        path.write_text(BAD)
        assert main(["compile", str(path), "--json"]) == 1
        document = json.loads(capsys.readouterr().out)
        assert document["ok"] is False
        assert any("undeclared" in d for d in document["diagnostics"])


class TestSubmitAndStatus:
    def test_submit_prints_digest_and_streams_events(
        self, good_file, endpoint, capsys
    ):
        code = main([
            "submit", good_file, "--connect", endpoint, "--tenant", "alice",
        ])
        captured = capsys.readouterr()
        assert code == 0
        assert captured.out.startswith("download-module cli_service_demo")
        assert "function_done" in captured.err

    def test_submit_json_document(self, good_file, endpoint, capsys):
        code = main([
            "submit", good_file, "--connect", endpoint, "--json", "--quiet",
        ])
        assert code == 0
        job = json.loads(capsys.readouterr().out)
        assert job["state"] == "done"
        assert job["report"]["module"] == "cli_service_demo"

    def test_status_overview_with_gantt(self, good_file, endpoint, capsys):
        main(["submit", good_file, "--connect", endpoint, "--quiet"])
        capsys.readouterr()
        assert main(["status", "--connect", endpoint, "--gantt"]) == 0
        out = capsys.readouterr().out
        assert "service:" in out
        assert "slot 0" in out

    def test_status_json_for_one_job(self, good_file, endpoint, capsys):
        main([
            "submit", good_file, "--connect", endpoint, "--quiet", "--json",
        ])
        job_id = json.loads(capsys.readouterr().out)["job"]
        code = main([
            "status", "--connect", endpoint, "--job", job_id, "--json",
        ])
        assert code == 0
        reply = json.loads(capsys.readouterr().out)
        assert reply["job"]["state"] == "done"

    def test_unreachable_service_is_a_clean_error(self, good_file, capsys):
        code = main([
            "submit", good_file, "--connect", "127.0.0.1:1",
        ])
        assert code == 2
        assert "unreachable" in capsys.readouterr().err

    def test_missing_address_is_a_clean_error(
        self, good_file, capsys, monkeypatch
    ):
        monkeypatch.delenv("WARPCC_SERVICE", raising=False)
        assert main(["submit", good_file]) == 2
        assert "no-address" in capsys.readouterr().err
