"""Seeded open-loop load generator for the compile service.

Open loop means arrivals do not wait for completions: the generator
draws a Poisson arrival schedule, a tenant, a priority, and a workload
size for every job up front from one seeded RNG, then submits on that
schedule regardless of how the service is keeping up — which is what
exposes queueing behavior (admission rejections, p95 latency growth)
that closed-loop drivers structurally cannot see.

The plan (:func:`plan_load`) is a pure function of the spec, so two
runs with the same seed submit byte-identical modules in the same
order at the same offsets; only service timing varies.
"""

from __future__ import annotations

import random
import statistics
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..workloads.kernels import synthetic_function
from ..workloads.sizes import SIZE_CLASSES, lines_for
from ..workloads.synthetic import synthetic_program
from .server import AdmissionError, CompileService


@dataclass
class LoadSpec:
    """What to throw at the service."""

    seed: int = 0
    jobs: int = 16
    #: mean arrival rate (jobs/second); exponential inter-arrivals
    arrival_rate: float = 6.0
    #: tenant name -> sampling weight (who submits)
    tenants: Dict[str, float] = field(
        default_factory=lambda: {"alice": 1.0, "bob": 1.0}
    )
    #: size class -> sampling weight (how big the module is)
    size_mix: Dict[str, float] = field(
        default_factory=lambda: {"tiny": 0.6, "small": 0.3, "medium": 0.1}
    )
    #: size class -> functions per module
    functions_by_size: Dict[str, int] = field(
        default_factory=lambda: {
            "tiny": 6,
            "small": 4,
            "medium": 2,
            "large": 2,
            "huge": 1,
        }
    )
    #: priority class -> sampling weight
    priority_mix: Dict[str, float] = field(
        default_factory=lambda: {"normal": 1.0}
    )
    opt_level: int = 2
    cells: int = 10

    def validate(self) -> None:
        if self.jobs < 1:
            raise ValueError(f"need at least one job, got {self.jobs}")
        if self.arrival_rate <= 0:
            raise ValueError(
                f"arrival rate must be positive, got {self.arrival_rate}"
            )
        for size in self.size_mix:
            if size not in SIZE_CLASSES:
                raise KeyError(f"unknown size class {size!r}")


@dataclass(frozen=True)
class PlannedJob:
    """One pre-drawn arrival."""

    index: int
    at: float  # seconds after the run starts
    tenant: str
    priority: str
    size_class: str
    n_functions: int
    module_name: str
    source: str


def _weighted_choice(rng: random.Random, mix: Dict[str, float]) -> str:
    names = sorted(mix)
    weights = [mix[name] for name in names]
    return rng.choices(names, weights=weights, k=1)[0]


def plan_load(spec: LoadSpec) -> List[PlannedJob]:
    """Draw the full arrival schedule (deterministic in the seed)."""
    spec.validate()
    rng = random.Random(spec.seed)
    plan: List[PlannedJob] = []
    clock = 0.0
    for index in range(spec.jobs):
        clock += rng.expovariate(spec.arrival_rate)
        tenant = _weighted_choice(rng, spec.tenants)
        priority = _weighted_choice(rng, spec.priority_mix)
        size_class = _weighted_choice(rng, spec.size_mix)
        n_functions = spec.functions_by_size.get(size_class, 2)
        module_name = f"load_{spec.seed}_{index}_{size_class}"
        plan.append(
            PlannedJob(
                index=index,
                at=clock,
                tenant=tenant,
                priority=priority,
                size_class=size_class,
                n_functions=n_functions,
                module_name=module_name,
                source=synthetic_program(
                    size_class, n_functions, module_name=module_name
                ),
            )
        )
    return plan


def _percentile(sorted_values: List[float], q: float) -> float:
    """Nearest-rank percentile (deterministic, no interpolation)."""
    if not sorted_values:
        return 0.0
    rank = -(-q * len(sorted_values) // 1)  # ceil(q * n)
    rank = min(len(sorted_values), max(1, int(rank)))
    return sorted_values[rank - 1]


@dataclass
class LoadReport:
    """Throughput/latency outcome of one load-generation run."""

    spec_seed: int
    jobs_planned: int
    jobs_completed: int
    jobs_failed: int
    jobs_rejected: int
    elapsed: float
    throughput: float  # completed jobs / second
    latency_p50: float
    latency_p95: float
    latency_mean: float
    queue_wait_p50: float
    queue_wait_p95: float
    pool_utilization: float
    workers: int
    per_tenant_completed: Dict[str, int] = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {
            "seed": self.spec_seed,
            "jobs_planned": self.jobs_planned,
            "jobs_completed": self.jobs_completed,
            "jobs_failed": self.jobs_failed,
            "jobs_rejected": self.jobs_rejected,
            "elapsed_s": round(self.elapsed, 6),
            "throughput_jobs_per_s": round(self.throughput, 4),
            "latency_p50_s": round(self.latency_p50, 6),
            "latency_p95_s": round(self.latency_p95, 6),
            "latency_mean_s": round(self.latency_mean, 6),
            "queue_wait_p50_s": round(self.queue_wait_p50, 6),
            "queue_wait_p95_s": round(self.queue_wait_p95, 6),
            "pool_utilization": round(self.pool_utilization, 4),
            "workers": self.workers,
            "per_tenant_completed": dict(
                sorted(self.per_tenant_completed.items())
            ),
        }


def run_load(
    service: CompileService,
    spec: LoadSpec,
    *,
    time_scale: float = 1.0,
    wait_timeout: Optional[float] = 300.0,
) -> LoadReport:
    """Drive ``service`` with the spec's arrival schedule and measure.

    ``time_scale`` compresses the schedule (0.5 = twice as fast) so
    benchmarks can sweep offered load without changing the seed's draw
    sequence.  Rejected submissions (admission control) are counted and
    skipped — open loop never retries.
    """
    plan = plan_load(spec)
    start = time.monotonic()
    submitted: List[tuple] = []  # (PlannedJob, job_id)
    rejected = 0
    for planned in plan:
        target = start + planned.at * time_scale
        delay = target - time.monotonic()
        if delay > 0:
            time.sleep(delay)
        try:
            job_id = service.submit(
                planned.source,
                tenant=planned.tenant,
                filename=f"{planned.module_name}.w2",
                priority=planned.priority,
                opt_level=spec.opt_level,
                cells=spec.cells,
            )
        except AdmissionError:
            rejected += 1
            continue
        submitted.append((planned, job_id))

    latencies: List[float] = []
    queue_waits: List[float] = []
    per_tenant: Dict[str, int] = {}
    failed = 0
    for planned, job_id in submitted:
        job = service.wait(job_id, timeout=wait_timeout)
        if job.state != "done":
            failed += 1
            continue
        latencies.append(job.finished_at - job.submitted_at)
        if job.started_at is not None:
            queue_waits.append(job.started_at - job.submitted_at)
        per_tenant[planned.tenant] = per_tenant.get(planned.tenant, 0) + 1
    elapsed = time.monotonic() - start

    latencies.sort()
    queue_waits.sort()
    return LoadReport(
        spec_seed=spec.seed,
        jobs_planned=len(plan),
        jobs_completed=len(latencies),
        jobs_failed=failed,
        jobs_rejected=rejected,
        elapsed=elapsed,
        throughput=len(latencies) / elapsed if elapsed > 0 else 0.0,
        latency_p50=_percentile(latencies, 0.50),
        latency_p95=_percentile(latencies, 0.95),
        latency_mean=(
            statistics.fmean(latencies) if latencies else 0.0
        ),
        queue_wait_p50=_percentile(queue_waits, 0.50),
        queue_wait_p95=_percentile(queue_waits, 0.95),
        pool_utilization=service.pool_utilization(),
        workers=service.worker_count,
        per_tenant_completed=per_tenant,
    )


# ---------------------------------------------------------------------------
# Edit-session replay: the watch-mode speculation benchmark workload.
#
# A seeded "user" edits one module repeatedly: each step mutates one
# function (cumulatively, like a real editing session), optionally
# streams the new source as a watch update, pauses while speculation
# runs, then submits interactively — the submit-to-done latency is what
# speculation is supposed to collapse into cache hits.  The plan is a
# pure function of the spec, so speculation-on and speculation-off runs
# replay byte-identical sources in the same order.
# ---------------------------------------------------------------------------


@dataclass
class EditSessionSpec:
    """One seeded editing session over a single synthetic module."""

    seed: int = 0
    edits: int = 8
    functions: int = 4
    size_class: str = "small"
    opt_level: int = 2
    cells: int = 10
    module_name: Optional[str] = None

    def validate(self) -> None:
        if self.edits < 1:
            raise ValueError(f"need at least one edit, got {self.edits}")
        if self.functions < 1:
            raise ValueError(
                f"need at least one function, got {self.functions}"
            )
        if self.size_class not in SIZE_CLASSES:
            raise KeyError(f"unknown size class {self.size_class!r}")

    @property
    def name(self) -> str:
        if self.module_name is not None:
            return self.module_name
        return f"edit_{self.seed}_{self.size_class}"


@dataclass(frozen=True)
class EditStep:
    """The module text after one edit."""

    index: int
    function: str  # name of the function this step mutated
    source: str


def _insert_before_return(function_text: str, statement: str) -> str:
    """Insert one statement line just above the function's return."""
    lines = function_text.split("\n")
    for position in range(len(lines) - 1, -1, -1):
        stripped = lines[position].lstrip()
        if stripped.startswith("return"):
            pad = lines[position][: len(lines[position]) - len(stripped)]
            lines.insert(position, f"{pad}{statement}")
            return "\n".join(lines)
    raise ValueError("function text has no return statement")


def plan_edit_session(spec: EditSessionSpec) -> List[EditStep]:
    """Draw the full session (deterministic in the seed): each step
    picks a function and appends a fresh statement to it, so every
    step's fingerprint differs from the last in exactly one function."""
    spec.validate()
    rng = random.Random(spec.seed)
    lines = lines_for(spec.size_class)
    bodies = [
        synthetic_function(f"f{i + 1}", lines)
        for i in range(spec.functions)
    ]
    steps: List[EditStep] = []
    for index in range(spec.edits):
        target = rng.randrange(spec.functions)
        constant = round(rng.uniform(0.001, 0.999), 6)
        bodies[target] = _insert_before_return(
            bodies[target], f"x := x + {constant};"
        )
        body = "\n".join(bodies)
        source = (
            f"module {spec.name}\n"
            f"section sec1 (cells 0..0)\n"
            f"{body}\n"
            f"end\n"
            f"end\n"
        )
        steps.append(
            EditStep(index=index, function=f"f{target + 1}", source=source)
        )
    return steps


@dataclass
class EditSessionReport:
    """Interactive latency outcome of one replayed edit session."""

    spec_seed: int
    edits: int
    completed: int
    failed: int
    speculate: bool
    interactive_p50: float
    interactive_p95: float
    interactive_mean: float
    tasks_total: int
    cache_served: int
    digests: List[str] = field(default_factory=list)
    speculation: Dict[str, int] = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {
            "seed": self.spec_seed,
            "edits": self.edits,
            "completed": self.completed,
            "failed": self.failed,
            "speculate": self.speculate,
            "interactive_p50_s": round(self.interactive_p50, 6),
            "interactive_p95_s": round(self.interactive_p95, 6),
            "interactive_mean_s": round(self.interactive_mean, 6),
            "tasks_total": self.tasks_total,
            "cache_served": self.cache_served,
            "speculation": dict(self.speculation),
        }


def replay_edit_session(
    service: CompileService,
    spec: EditSessionSpec,
    *,
    speculate: bool = True,
    tenant: str = "editor",
    settle_timeout: Optional[float] = 120.0,
    wait_timeout: Optional[float] = 300.0,
) -> EditSessionReport:
    """Replay the session against ``service`` and measure interactive
    submit-to-done latency.

    With ``speculate=True`` each edit is streamed as a watch update
    first, and the "think time" before the interactive submit lasts
    until the speculative job settles (a user pausing long enough for
    speculation to finish — the best case the bench is guarding).  With
    ``speculate=False`` the same sources are submitted cold.
    """
    steps = plan_edit_session(spec)
    latencies: List[float] = []
    digests: List[str] = []
    failed = 0
    tasks_total = 0
    cache_served = 0
    for step in steps:
        filename = f"{spec.name}.w2"
        if speculate:
            outcome = service.watch_update(
                step.source,
                watch=spec.name,
                filename=filename,
                opt_level=spec.opt_level,
                cells=spec.cells,
            )
            job_id = outcome.get("job")
            if job_id is not None:
                try:
                    service.wait(job_id, timeout=settle_timeout)
                except (KeyError, TimeoutError):
                    pass  # speculation is best-effort; submit anyway
        try:
            job_id = service.submit(
                step.source,
                tenant=tenant,
                filename=filename,
                priority="interactive",
                opt_level=spec.opt_level,
                cells=spec.cells,
            )
        except AdmissionError:
            failed += 1
            continue
        job = service.wait(job_id, timeout=wait_timeout)
        if job.state != "done":
            failed += 1
            continue
        latencies.append(job.finished_at - job.submitted_at)
        digests.append(job.result.digest)
        tasks_total += job.tasks_total
        cache_served += job.cache_served
    latencies.sort()
    manager = getattr(service, "speculation", None)
    return EditSessionReport(
        spec_seed=spec.seed,
        edits=len(steps),
        completed=len(digests),
        failed=failed,
        speculate=speculate,
        interactive_p50=_percentile(latencies, 0.50),
        interactive_p95=_percentile(latencies, 0.95),
        interactive_mean=(
            statistics.fmean(latencies) if latencies else 0.0
        ),
        tasks_total=tasks_total,
        cache_served=cache_served,
        digests=digests,
        speculation=manager.stats() if manager is not None else {},
    )
