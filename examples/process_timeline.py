"""The paper's Figure 2, from real data: who computes when.

Replays the compilation of the nine-function mechanical-engineering user
program on the simulated workstation network and draws a text Gantt chart
of every machine — first with one workstation per function (the paper's
first §4.3 measurement, where small-function processors idle most of the
run), then with load-balanced grouping on five machines.

Run:  python examples/process_timeline.py
"""

from repro.cluster.cluster import ClusterSimulation
from repro.driver.sequential import SequentialCompiler
from repro.metrics.gantt import render_gantt, utilization
from repro.parallel.schedule import (
    grouped_lpt_assignment,
    one_function_per_processor,
)
from repro.workloads.user_program import user_program


def main() -> None:
    profile = SequentialCompiler().compile(user_program()).profile
    sim = ClusterSimulation()
    sequential = sim.run_sequential(profile)

    print("=== one workstation per function (9 processors) ===")
    nine = sim.run_parallel(
        profile, one_function_per_processor(profile.functions)
    )
    print(render_gantt(nine))
    print(f"speedup: {sequential.elapsed / nine.elapsed:.2f}")
    print("utilization:",
          {m: f"{u:.0%}" for m, u in utilization(nine).items()})
    print()

    print("=== load-balanced grouping (5 processors) ===")
    five = sim.run_parallel(
        profile, grouped_lpt_assignment(profile.functions, 5)
    )
    print(render_gantt(five))
    print(f"speedup: {sequential.elapsed / five.elapsed:.2f}")
    print()
    print("The small-function processors of the 9-machine run sit idle for")
    print("most of the compilation; grouping them onto shared machines")
    print("keeps the speedup while using four fewer workstations (§4.3).")


if __name__ == "__main__":
    main()
