"""The shared experiment runner (metrics.experiments)."""

import pytest

from repro.metrics.experiments import (
    measure_pair,
    measure_user_program,
    profile_for,
    user_program_profile,
)


class TestProfiles:
    def test_profile_cached_per_configuration(self):
        a = profile_for("tiny", 2)
        b = profile_for("tiny", 2)
        assert a is b  # lru_cache: one real compile per config

    def test_user_program_profile_shape(self):
        profile = user_program_profile()
        assert len(profile.functions) == 9
        assert len(profile.by_section()) == 3


class TestMeasurePair:
    def test_default_one_processor_per_function(self):
        pair = measure_pair("tiny", 4)
        assert pair.workers == 4
        machines = {s.machine for s in pair.parallel.spans}
        assert len(machines) == 4

    def test_limited_processors_queue_tasks(self):
        pair = measure_pair("tiny", 4, processors=2)
        assert pair.workers == 2
        machines = {s.machine for s in pair.parallel.spans}
        assert len(machines) == 2

    def test_speedup_property(self):
        pair = measure_pair("tiny", 1)
        assert pair.speedup == pytest.approx(
            pair.sequential.elapsed / pair.parallel.elapsed
        )

    def test_custom_cost_model_respected(self):
        from repro.cluster.costs import CostModel

        cheap_startup = CostModel(lisp_core_words=0.0, lisp_init_sec=0.0)
        default = measure_pair("tiny", 2)
        cheap = measure_pair("tiny", 2, costs=cheap_startup)
        assert cheap.parallel.elapsed < default.parallel.elapsed


class TestUserProgramStrategies:
    def test_all_strategies_run(self):
        for strategy in ("grouped", "fcfs", "one-per-processor"):
            pair = measure_user_program(5, strategy=strategy)
            assert pair.parallel.elapsed > 0

    def test_unknown_strategy_rejected(self):
        with pytest.raises(ValueError, match="unknown strategy"):
            measure_user_program(5, strategy="magic")

    def test_one_per_processor_ignores_processor_count(self):
        pair = measure_user_program(3, strategy="one-per-processor")
        assert pair.workers == 9
