"""Function masters: the per-function worker processes.

"The number of processes on the function level ... is equal to the total
number of functions in the program.  Function masters are Common Lisp
processes.  The task of a function master is to implement phases 2 and 3
of the compiler" (§3.2).

Our function masters are Python processes (or in-process calls for the
serial backend).  Each worker receives a small, picklable
:class:`FunctionTask`, re-derives phase-1 state from the source text (the
moral equivalent of a fresh Lisp process interpreting its initializing
information), compiles exactly one function, and ships the object code
back.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from ..asmlink.objformat import ObjectFunction
from ..machine.warp_array import WarpArrayModel
from .phases import compile_one_function, phase1_parse_and_check
from .results import FunctionReport


@dataclass
class FunctionTask:
    """Everything a function master needs, cheap to pickle.

    ``function_name`` of None makes this a *section-level* task: one
    worker compiles every function of the section.  That was the paper's
    original plan ("to parallelize only the compilation of programs for
    different sections", §3.1) before the authors realized functions
    could be compiled independently too.
    """

    source_text: str
    filename: str
    section_name: str
    function_name: Optional[str] = None
    opt_level: int = 2
    cell_count: int = 10


@dataclass
class FunctionTaskResult:
    """What a function master sends back to its section master."""

    section_name: str
    function_name: str
    obj: ObjectFunction
    report: FunctionReport
    diagnostics: List[str] = field(default_factory=list)


def run_function_master(task: FunctionTask) -> FunctionTaskResult:
    """Entry point of one function master (picklable module-level fn)."""
    if task.function_name is None:
        raise ValueError(
            "section-level tasks must go through run_compile_task"
        )
    parsed = phase1_parse_and_check(task.source_text, task.filename)
    array = WarpArrayModel(cell_count=task.cell_count)
    obj, report = compile_one_function(
        parsed,
        task.section_name,
        task.function_name,
        array,
        task.opt_level,
    )
    return FunctionTaskResult(
        section_name=task.section_name,
        function_name=task.function_name,
        obj=obj,
        report=report,
        diagnostics=[d.render() for d in parsed.sink.diagnostics],
    )


def run_compile_task(task: FunctionTask) -> List[FunctionTaskResult]:
    """Worker entry point for both granularities.

    A function-level task yields one result; a section-level task
    (``function_name is None``) compiles every function of its section in
    source order within one worker process.
    """
    if task.function_name is not None:
        return [run_function_master(task)]
    parsed = phase1_parse_and_check(task.source_text, task.filename)
    section = parsed.module.section_named(task.section_name)
    if section is None:
        raise KeyError(f"no section named {task.section_name!r}")
    array = WarpArrayModel(cell_count=task.cell_count)
    results: List[FunctionTaskResult] = []
    for function in section.functions:
        obj, report = compile_one_function(
            parsed, task.section_name, function.name, array, task.opt_level
        )
        results.append(
            FunctionTaskResult(
                section_name=task.section_name,
                function_name=function.name,
                obj=obj,
                report=report,
                diagnostics=[d.render() for d in parsed.sink.diagnostics],
            )
        )
    return results
