"""Fair-share scheduling in the compile service's task queue."""

import pytest

from repro.driver.function_master import FunctionTask
from repro.service.queue import (
    PRIORITY_CLASSES,
    FairShareQueue,
    priority_index,
    result_keys_for_task,
)


def _task(section, function, cost=1.0):
    return FunctionTask(
        source_text="",
        filename="t.w2",
        section_name=section,
        function_name=function,
        cost_hint=cost,
    )


def _keyed(*tasks):
    return [(task, result_keys_for_task(task)) for task in tasks]


def _names(wave):
    return [(q.job_id, q.task.function_name) for q in wave]


class TestPriorityIndex:
    def test_ranks_every_class(self):
        assert [priority_index(p) for p in PRIORITY_CLASSES] == [0, 1, 2]

    def test_rejects_unknown(self):
        with pytest.raises(ValueError, match="unknown priority"):
            priority_index("urgent")


class TestFairShare:
    def test_single_job_is_fifo(self):
        q = FairShareQueue()
        q.enqueue("j1", "a", 1, _keyed(*[_task("s", f"f{i}") for i in range(4)]))
        wave = q.next_wave(10)
        assert [t.task.function_name for t in wave] == ["f0", "f1", "f2", "f3"]
        assert not q.has_pending()

    def test_small_tenant_not_starved_by_huge_job(self):
        """The headline property: a tiny job's tasks land in the very
        first wave even when a huge job from another tenant arrived
        first with far more work."""
        q = FairShareQueue()
        q.enqueue(
            "huge", "a", 1,
            _keyed(*[_task("s", f"big{i}", cost=50.0) for i in range(10)]),
        )
        q.enqueue("tiny", "b", 1, _keyed(_task("t", "t0"), _task("t", "t1")))
        wave = q.next_wave(4)
        jobs = [t.job_id for t in wave]
        # both tiny tasks dispatched in the first wave of four
        assert jobs.count("tiny") == 2
        # and the huge job is not locked out either
        assert jobs.count("huge") == 2

    def test_huge_job_cannot_monopolize_any_wave(self):
        q = FairShareQueue()
        q.enqueue(
            "huge", "a", 1,
            _keyed(*[_task("s", f"big{i}", cost=20.0) for i in range(20)]),
        )
        q.enqueue(
            "small", "b", 1,
            _keyed(*[_task("t", f"sm{i}", cost=1.0) for i in range(20)]),
        )
        # cost-weighted stride: each huge task (cost 20) pushes the huge
        # tenant 20 units of virtual time ahead, so while small work is
        # pending the huge job can never take two consecutive slots
        order = []
        while q.has_pending():
            order.extend(t.job_id for t in q.next_wave(8))
        small_left = order.count("small")
        for current, following in zip(order, order[1:]):
            small_left -= current == "small"
            if current == "huge" and small_left > 0:
                assert following == "small"

    def test_weighted_tenants_split_proportionally(self):
        q = FairShareQueue(tenant_weights={"a": 3.0, "b": 1.0})
        q.enqueue("ja", "a", 1, _keyed(*[_task("s", f"a{i}") for i in range(12)]))
        q.enqueue("jb", "b", 1, _keyed(*[_task("t", f"b{i}") for i in range(12)]))
        wave = q.next_wave(8)
        jobs = [t.job_id for t in wave]
        assert jobs.count("ja") == 6
        assert jobs.count("jb") == 2

    def test_within_tenant_small_job_overtakes(self):
        """The per-job second level: one tenant's tiny job overtakes
        the same tenant's huge job."""
        q = FairShareQueue()
        q.enqueue(
            "huge", "a", 1,
            _keyed(*[_task("s", f"big{i}", cost=30.0) for i in range(6)]),
        )
        q.enqueue("tiny", "a", 1, _keyed(_task("t", "t0", cost=1.0)))
        first = q.next_wave(1)[0]
        second = q.next_wave(1)[0]
        # huge was first in line, but right after its first task the
        # tiny job's lower job-vtime wins the slot
        assert first.job_id == "huge"
        assert second.job_id == "tiny"

    def test_strict_priority_preempts_fair_share(self):
        q = FairShareQueue()
        q.enqueue("batch", "a", priority_index("batch"),
                  _keyed(*[_task("s", f"f{i}") for i in range(3)]))
        q.enqueue("inter", "b", priority_index("interactive"),
                  _keyed(_task("t", "t0")))
        wave = q.next_wave(2)
        assert _names(wave)[0] == ("inter", "t0")

    def test_dispatch_order_is_deterministic(self):
        def build():
            q = FairShareQueue(tenant_weights={"a": 2.0})
            q.enqueue("j1", "a", 1,
                      _keyed(*[_task("s", f"x{i}", cost=3.0) for i in range(5)]))
            q.enqueue("j2", "b", 1,
                      _keyed(*[_task("t", f"y{i}", cost=1.0) for i in range(5)]))
            q.enqueue("j3", "b", 0, _keyed(_task("u", "z0")))
            order = []
            while q.has_pending():
                order.extend(_names(q.next_wave(3)))
            return order

        assert build() == build()

    def test_result_key_collision_defers_whole_job(self):
        """Two jobs compiling the same (section, function): one wave
        never carries both (the pool routes results by that key)."""
        q = FairShareQueue()
        q.enqueue("j1", "a", 1, _keyed(_task("s", "main")))
        q.enqueue("j2", "b", 1, _keyed(_task("s", "main")))
        first = q.next_wave(8)
        second = q.next_wave(8)
        assert len(first) == 1 and len(second) == 1
        assert {first[0].job_id, second[0].job_id} == {"j1", "j2"}

    def test_idle_tenant_reactivates_at_floor(self):
        """A tenant that was idle while others ran does not bank
        credit: on re-activation it shares from *now* instead of
        monopolizing until its vtime catches up — and it is not
        punished for having been idle either."""
        q = FairShareQueue()
        q.enqueue("ja", "a", 1,
                  _keyed(*[_task("s", f"a{i}", cost=10.0) for i in range(4)]))
        q.next_wave(4)  # tenant a's vtime is now 40
        q.enqueue("ja2", "a", 1, _keyed(_task("s", "a4", cost=10.0)))
        q.enqueue("jb", "b", 1,
                  _keyed(*[_task("t", f"b{i}", cost=10.0) for i in range(2)]))
        wave = q.next_wave(3)
        jobs = [t.job_id for t in wave]
        # b activates at the floor (a's 40), so they alternate instead
        # of b draining everything first
        assert jobs.count("jb") == 2
        assert jobs.count("ja2") == 1

    def test_discard_job_drops_pending_tasks(self):
        q = FairShareQueue()
        q.enqueue("j1", "a", 1, _keyed(*[_task("s", f"f{i}") for i in range(3)]))
        assert q.pending_for("j1") == 3
        assert q.discard_job("j1") == 3
        assert not q.has_pending()
        assert q.discard_job("j1") == 0

    def test_cost_floor_applies(self):
        q = FairShareQueue(min_cost=2.0)
        q.enqueue("j1", "a", 1, _keyed(_task("s", "f", cost=0.001)))
        assert q.next_wave(1)[0].cost == 2.0

    def test_rejects_bad_weights(self):
        with pytest.raises(ValueError):
            FairShareQueue(tenant_weights={"a": 0.0})
        q = FairShareQueue()
        with pytest.raises(ValueError):
            q.set_weight("a", -1.0)


class TestResultKeys:
    def test_function_task_has_one_key(self):
        assert result_keys_for_task(_task("s", "main")) == (("s", "main"),)

    def test_section_task_expands_to_member_functions(self):
        source = (
            "module m\nsection s (cells 0..0)\n"
            "function f() begin send(1.0); end\n"
            "function g() begin send(2.0); end\n"
            "end\nend\n"
        )
        task = FunctionTask(
            source_text=source,
            filename="m.w2",
            section_name="s",
            function_name=None,
        )
        assert result_keys_for_task(task) == (("s", "f"), ("s", "g"))
