"""Gantt rendering and utilization metrics."""

import pytest

from repro.cluster.cluster import ClusterSimulation, CompileSpan, TimingReport
from repro.metrics.gantt import render_gantt, utilization

from test_cluster import make_profile


def real_report():
    sim = ClusterSimulation()
    profile = make_profile([50000, 50000, 50000])
    return sim.run_parallel(profile, processors=3)


class TestGantt:
    def test_one_row_per_machine(self):
        report = real_report()
        text = render_gantt(report)
        lines = text.splitlines()
        machines = {s.machine for s in report.spans}
        assert len(lines) == 1 + len(machines)

    def test_rows_have_requested_width(self):
        text = render_gantt(real_report(), width=40)
        for line in text.splitlines()[1:]:
            bar = line.split("|")[1]
            assert len(bar) == 40

    def test_contains_all_three_glyphs(self):
        text = render_gantt(real_report())
        assert "=" in text  # startup
        assert "#" in text  # compute
        assert "." in text  # idle (the home row never hosts compiles)

    def test_startup_precedes_compute(self):
        text = render_gantt(real_report(), width=60)
        for line in text.splitlines()[1:]:
            bar = line.split("|")[1]
            if "#" in bar and "=" in bar:
                assert bar.index("=") < bar.index("#")

    def test_empty_report_rejected(self):
        with pytest.raises(ValueError):
            render_gantt(TimingReport(elapsed=0.0))

    def test_narrow_width_rejected(self):
        with pytest.raises(ValueError):
            render_gantt(real_report(), width=5)

    def test_synthetic_span_placement(self):
        report = TimingReport(elapsed=100.0, cpu_busy={"m": 50.0})
        report.spans.append(
            CompileSpan(
                section_name="s",
                function_name="f",
                machine="m",
                start=0.0,
                compute_start=25.0,
                end=75.0,
            )
        )
        bar = render_gantt(report, width=20).splitlines()[1].split("|")[1]
        assert bar == "=====##########....."


class TestUtilization:
    def test_fractions_in_range(self):
        report = real_report()
        for value in utilization(report).values():
            assert 0.0 <= value <= 1.0

    def test_busy_machine_has_high_utilization(self):
        report = TimingReport(elapsed=100.0, cpu_busy={"a": 90.0, "b": 10.0})
        result = utilization(report)
        assert result["a"] == pytest.approx(0.9)
        assert result["b"] == pytest.approx(0.1)

    def test_zero_elapsed_rejected(self):
        with pytest.raises(ValueError):
            utilization(TimingReport(elapsed=0.0))
