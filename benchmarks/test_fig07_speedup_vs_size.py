"""Figure 7: speedup versus function size (lines of code).

Paper: "If the number of functions is small, the size of the function
does not influence speedup.  This changes for 4 and 8 functions: the
parallel speedup is significantly smaller for the largest function
(f_huge)."
"""

from figures_common import speedup_vs_size_figure, write_figure
from repro.workloads.sizes import SIZE_CLASSES


def test_fig07_speedup_vs_size(benchmark, results_dir):
    fig = benchmark(speedup_vs_size_figure)
    write_figure(results_dir, fig)

    large_loc = SIZE_CLASSES["large"]
    huge_loc = SIZE_CLASSES["huge"]

    # n=1: size barely matters (all speedups hug 1.0).
    one = fig.series_named("1 function(s)")
    values = [one.points[x] for x in fig.xs]
    assert max(values) - min(values) < 0.6

    # n=4 and n=8: the speedup drops from f_large to f_huge.
    for label in ("4 function(s)", "8 function(s)"):
        series = fig.series_named(label)
        assert series.points[huge_loc] < series.points[large_loc]

    # More functions -> more speedup at every size above tiny.
    for loc in [SIZE_CLASSES[s] for s in ("small", "medium", "large")]:
        assert (
            fig.series_named("8 function(s)").points[loc]
            > fig.series_named("2 function(s)").points[loc]
        )
