"""Parallel execution backends and scheduling strategies."""

from .backend import ExecutionBackend, stream_task_results
from .fault_tolerance import (
    ChaosBackend,
    FlakyBackend,
    FunctionMasterFailure,
    RetryBudgetExceeded,
    RetryingBackend,
)
from .local import ProcessPoolBackend, SerialBackend
from .parallel_make import (
    MakeCycleError,
    MakeResult,
    MakeTarget,
    simulate_parallel_make,
)
from .schedule import (
    Assignment,
    ast_cost_hint,
    batch_tasks_by_cost,
    fcfs_assignment,
    grouped_lpt_assignment,
    lines_and_nesting_cost,
    one_function_per_processor,
    work_units_cost,
)
from .supervisor import (
    SupervisedBackend,
    SupervisionStats,
    WorkerHealthTracker,
)
from .warm_pool import WarmPoolBackend

__all__ = [
    "Assignment",
    "ChaosBackend",
    "ExecutionBackend",
    "FlakyBackend",
    "FunctionMasterFailure",
    "MakeCycleError",
    "RetryBudgetExceeded",
    "RetryingBackend",
    "SupervisedBackend",
    "SupervisionStats",
    "WorkerHealthTracker",
    "MakeResult",
    "MakeTarget",
    "ProcessPoolBackend",
    "SerialBackend",
    "WarmPoolBackend",
    "ast_cost_hint",
    "batch_tasks_by_cost",
    "fcfs_assignment",
    "grouped_lpt_assignment",
    "lines_and_nesting_cost",
    "one_function_per_processor",
    "simulate_parallel_make",
    "stream_task_results",
    "work_units_cost",
]
