#!/usr/bin/env python3
"""Triage a fuzz corpus entry: rerun it under every pipeline and print
the classification.

    PYTHONPATH=src python scripts/fuzz_triage.py tests/corpus/fuzz_*.json
    PYTHONPATH=src python scripts/fuzz_triage.py --seed 29 --size-class small

With file arguments, each corpus entry's embedded source and inputs are
replayed through the *full* pipeline matrix (not just the pipelines the
entry pins) and the per-pipeline verdicts are printed.  With ``--seed``,
the generator reproduces the program first — the way to investigate a
seed reported by ``warpcc fuzz`` or the CI fuzz job.
"""

import argparse
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.fuzz import config_for_size_class, generate_program  # noqa: E402
from repro.fuzz.oracle import (  # noqa: E402
    ALL_PIPELINES,
    DEFAULT_PIPELINES,
    DifferentialOracle,
    OracleConfig,
)
from repro.fuzz.reduce import load_corpus_entry  # noqa: E402


def triage(oracle, name, source, inputs, seed):
    report = oracle.check(source, inputs=inputs, seed=seed)
    verdict = "CLEAN" if report.ok else "MISMATCH"
    print(f"== {name}: {verdict}")
    for outcome in report.outcomes:
        status = outcome.digest[:16] + "…" if outcome.digest else (
            f"error: {outcome.error}"
        )
        print(f"   {outcome.pipeline:18s} {status}")
    if report.semantic_checked:
        agree = report.reference_outputs == report.executed_outputs
        print(f"   {'reference-vs-sim':18s} "
              f"{'agree' if agree else 'DISAGREE'}")
    for mismatch in report.mismatches:
        print(f"   -> {mismatch.describe()}")
    return report.ok


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("entries", nargs="*", help="corpus JSON files")
    parser.add_argument("--seed", type=int, default=None,
                        help="regenerate and triage this generator seed")
    parser.add_argument("--size-class", default="small")
    parser.add_argument(
        "--in-process", action="store_true",
        help="skip the warm multiprocess pool (faster, sandbox-safe)",
    )
    args = parser.parse_args(argv)
    if not args.entries and args.seed is None:
        parser.error("give corpus files and/or --seed")

    pipelines = DEFAULT_PIPELINES if args.in_process else ALL_PIPELINES
    ok = True
    with DifferentialOracle(OracleConfig(pipelines=pipelines)) as oracle:
        for path in args.entries:
            entry = load_corpus_entry(path)
            ok &= triage(
                oracle,
                Path(path).name,
                entry["source"],
                entry["inputs"],
                entry.get("seed", 0),
            )
        if args.seed is not None:
            program = generate_program(
                args.seed, config_for_size_class(args.size_class)
            )
            ok &= triage(
                oracle,
                f"seed {args.seed} ({args.size_class})",
                program.source,
                program.inputs(),
                args.seed,
            )
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
