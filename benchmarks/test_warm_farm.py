"""Warm-worker farm benchmarks (real wall-clock on this machine).

Two claims from the warm-farm work, each with a generous threshold so CI
boxes of any speed stay stable:

(a) a *second* compilation through the warm pool is faster than a
    compilation through a cold ``ProcessPoolBackend`` — the warm run
    skips executor spin-up (the cold backend forks a fresh executor per
    ``run_tasks``) and, thanks to the per-worker phase-1 cache, any
    re-parse the workers would otherwise do;
(b) the bitset dataflow kernels solve liveness on ``f_huge`` faster
    than the reference frozenset solver.

Measurement notes.  Cold and warm compiles are measured as *paired
rounds* (cold then warm, repeated) and compared by the median of the
per-round differences.  Sequential blocks of rounds pick up
CPU-frequency and page-cache drift, which on slow CI boxes can exceed
the effect being measured; pairing cancels it because adjacent
measurements share the machine state.
"""

import time

from repro.driver.function_master import clear_phase1_cache
from repro.driver.master import ParallelCompiler
from repro.driver.sequential import SequentialCompiler
from repro.lang.diagnostics import DiagnosticSink
from repro.lang.parser import parse_text
from repro.lang.sema import check_module
from repro.ir.lowering import lower_module
from repro.opt.dataflow import (
    solve_backward_masks,
    solve_backward_sets,
    unpack_solution,
)
from repro.opt.liveness import block_use_def, live_variables
from repro.parallel.local import ProcessPoolBackend
from repro.parallel.warm_pool import WarmPoolBackend
from repro.workloads.synthetic import synthetic_program

SOURCE = synthetic_program("medium", 6)


def _timed(fn):
    start = time.perf_counter()
    fn()
    return time.perf_counter() - start


def test_warm_pool_second_compile_beats_cold_pool(results_dir):
    clear_phase1_cache()
    sequential_digest = SequentialCompiler().compile(SOURCE).digest

    rounds = 7

    cold_backend = ProcessPoolBackend(max_workers=4)
    cold_compiler = ParallelCompiler(backend=cold_backend)

    with WarmPoolBackend(max_workers=4) as warm_backend:
        warm_compiler = ParallelCompiler(backend=warm_backend)
        result = warm_compiler.compile(SOURCE)  # spin-up + cache fill
        assert result.digest == sequential_digest

        cold_walls, warm_walls = [], []
        for _ in range(rounds):
            cold_walls.append(_timed(lambda: cold_compiler.compile(SOURCE)))
            warm_walls.append(_timed(lambda: warm_compiler.compile(SOURCE)))

    diffs = sorted(c - w for c, w in zip(cold_walls, warm_walls))
    median_diff = diffs[rounds // 2]
    warm_wins = sum(1 for d in diffs if d > 0)
    cold_best, warm_best = min(cold_walls), min(warm_walls)
    (results_dir / "warm_vs_cold_pool.txt").write_text(
        f"{rounds} paired rounds (cold then warm per round)\n"
        f"cold pool best:      {cold_best:.3f}s\n"
        f"warm pool 2nd+ best: {warm_best:.3f}s\n"
        f"median paired diff:  {median_diff:+.3f}s "
        f"(warm wins {warm_wins}/{rounds} rounds)\n"
        f"warm advantage:      {cold_best / warm_best:.2f}x\n"
    )
    print(f"\nwarm advantage: {cold_best / warm_best:.2f}x, "
          f"median paired diff {median_diff:+.3f}s, "
          f"warm wins {warm_wins}/{rounds}")
    # Generous: on the median paired round the warm farm merely must not
    # be slower than paying a fresh executor fork (and its copy-on-write
    # page-faulting) per compilation.  Typical: warm wins every round by
    # ~10% on a 1-CPU container.
    assert median_diff > 0


def test_bitset_liveness_beats_frozenset_on_f_huge(results_dir):
    sink = DiagnosticSink()
    module = parse_text(synthetic_program("huge", 1), sink)
    assert not sink.has_errors
    sema = check_module(module, sink)
    ir = lower_module(module, sema)
    fn = next(iter(ir.all_functions()))

    # Prebuild each solver's natural input: frozensets for the reference,
    # int masks (plus the fact numbering) for the bitset kernel.
    sets_gen, sets_kill = {}, {}
    for block in fn.blocks:
        sets_gen[block.name], sets_kill[block.name] = block_use_def(block)
    index = {}
    mask_gen, mask_kill = {}, {}
    for name, facts in sets_gen.items():
        mask = 0
        for reg in facts:
            bit = index.setdefault(reg, len(index))
            mask |= 1 << bit
        mask_gen[name] = mask
    for name, facts in sets_kill.items():
        mask = 0
        for reg in facts:
            bit = index.setdefault(reg, len(index))
            mask |= 1 << bit
        mask_kill[name] = mask
    universe = list(index)

    def bitset_solve():
        entry_m, exit_m = solve_backward_masks(fn, mask_gen, mask_kill)
        return unpack_solution(entry_m, exit_m, universe)

    def sets_pipeline():
        gen, kill = {}, {}
        for block in fn.blocks:
            gen[block.name], kill[block.name] = block_use_def(block)
        return solve_backward_sets(fn, gen, kill)

    # Paired rounds, as above: each round times the bitset side then the
    # frozenset side back to back, and the comparison is the median of
    # the per-round ratios.
    repeat = 30
    rounds = 5
    kernel_ratios, full_ratios = [], []
    for _ in range(rounds):
        bitset = _timed(lambda: [bitset_solve() for _ in range(repeat)])
        sets = _timed(lambda: [solve_backward_sets(fn, sets_gen, sets_kill)
                               for _ in range(repeat)])
        kernel_ratios.append(sets / bitset)
        bitset = _timed(lambda: [live_variables(fn) for _ in range(repeat)])
        sets = _timed(lambda: [sets_pipeline() for _ in range(repeat)])
        full_ratios.append(sets / bitset)
    kernel_ratio = sorted(kernel_ratios)[rounds // 2]
    full_ratio = sorted(full_ratios)[rounds // 2]

    # Same solution either way.
    reference = solve_backward_sets(fn, sets_gen, sets_kill)
    fast = bitset_solve()
    assert fast.entry == reference.entry
    assert fast.exit == reference.exit
    pipeline = live_variables(fn)
    assert pipeline.entry == reference.entry
    assert pipeline.exit == reference.exit

    (results_dir / "bitset_dataflow.txt").write_text(
        f"liveness on f_huge ({len(fn.blocks)} blocks, "
        f"{len(universe)} registers), x{repeat} solves per round, "
        f"median of {rounds} paired rounds\n"
        f"solver kernel: bitset is {kernel_ratio:.2f}x the frozenset solver\n"
        f"full pipeline: bitset is {full_ratio:.2f}x the reference pipeline\n"
    )
    print(f"\nbitset kernel speedup: {kernel_ratio:.2f}x, "
          f"full pipeline: {full_ratio:.2f}x on {len(fn.blocks)} blocks")
    # Generous thresholds: the kernel itself runs ~2x the reference
    # solver; end to end the win is smaller (~1.15x) because both
    # pipelines share the use/def scan over every instruction.
    assert kernel_ratio > 1.2
    assert full_ratio > 1.0
