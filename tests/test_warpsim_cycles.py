"""Exact cycle-count regression fixtures: warpsim as a scoring oracle.

The variant search ranks compiled variants by warpsim's simulated cycle
count, so the timing model is load-bearing: a silent change to bundle
latencies, stall rules, or queue behavior would silently flip search
winners.  These fixtures pin the *exact* cycle counts of canonical
programs at every search-relevant config.  If a deliberate timing-model
change lands, update the numbers here AND bump
``repro.warpsim.scoring.SCORING_SCHEMA_VERSION`` (which invalidates
every cached variant score) in the same commit.
"""

from __future__ import annotations

from helpers import echo_module, wrap_function
from repro.driver.phases import (
    compile_one_function,
    phase1_parse_and_check,
    phase4_link_and_download,
)
from repro.driver.sequential import SequentialCompiler
from repro.machine.warp_array import WarpArrayModel
from repro.warpsim.scoring import (
    SCORING_SCHEMA_VERSION,
    input_set_digest,
    score_module,
    seeded_input_sets,
)

STRAIGHTLINE = wrap_function(
    """  function f(x: float, y: float) : float
  begin
    x := x * 2.0 + y;
    return x + y;
  end"""
)

LOOP8 = wrap_function(
    """  function f(x: float, y: float) : float
  var acc, t: float; i: int;
  begin
    acc := x; t := y;
    for i := 0 to 7 do
      acc := acc + x * 0.5 + i;
      t := t * 0.75 + acc;
    end;
    return acc + t;
  end"""
)

ECHO3 = echo_module(
    """  begin
    return x * 1.5 + 1.0;
  end""",
    3,
)


def _score_sequential(source, inputs):
    array = WarpArrayModel()
    result = SequentialCompiler(array=array).compile(source)
    return score_module(result.download, [inputs], array)


def _score_config(source, unroll_budget, ii_budget):
    """Compile the single function of ``source`` at one search config
    and score the linked module (the search's swap-module path)."""
    parsed = phase1_parse_and_check(source)
    array = WarpArrayModel()
    obj, report = compile_one_function(
        parsed, "s", "f", array, 2,
        unroll_budget=unroll_budget, ii_budget=ii_budget,
    )
    module, _, _ = phase4_link_and_download(parsed, {"s": [obj]}, array)
    return score_module(module, [[]], array), report


class TestPinnedCycleCounts:
    def test_scoring_schema_version_is_pinned(self):
        # Bumping this constant invalidates every cached variant score.
        # It must move exactly when the numbers in this file move.
        assert SCORING_SCHEMA_VERSION == 1

    def test_straightline_function(self):
        score = _score_sequential(STRAIGHTLINE, [])
        assert score.ok
        assert score.cycles == 16
        assert score.outputs == ((),)

    def test_loop8_default_pipeline(self):
        score = _score_sequential(LOOP8, [])
        assert score.ok
        assert score.cycles == 162

    def test_echo_module_cycles_and_outputs(self):
        score = _score_sequential(ECHO3, [1.0, 2.0, 3.0])
        assert score.ok
        assert score.cycles == 80
        assert score.outputs == ((2.5, 4.0, 5.5),)


class TestPinnedVariantCycleCounts:
    """The search's codegen knobs at exact, pinned cycle counts: these
    are the numbers the variant search trades off against each other."""

    def test_reference_config_pipelines_the_loop(self):
        score, report = _score_config(LOOP8, 0, 0)
        assert score.cycles == 162
        assert report.initiation_intervals == [17]

    def test_ii_budget_one_disables_pipelining(self):
        score, report = _score_config(LOOP8, 0, 1)
        assert score.cycles == 174  # slower here: pipelining was a win
        assert report.pipelined_loops == 0
        assert report.initiation_intervals == []

    def test_unroll_budget_eliminates_loop_overhead(self):
        score, report = _score_config(LOOP8, 8, 0)
        assert score.cycles == 98  # the search-winning config for LOOP8
        assert report.pipelined_loops == 0

    def test_unroll_budget_above_trip_count_is_equivalent(self):
        small, _ = _score_config(LOOP8, 8, 0)
        large, _ = _score_config(LOOP8, 64, 0)
        assert small.cycles == large.cycles == 98


class TestScoreModuleClassification:
    def test_deadlock_is_classified_not_raised(self):
        array = WarpArrayModel()
        result = SequentialCompiler(array=array).compile(ECHO3)
        score = score_module(result.download, [[1.0]], array)  # starved
        assert not score.ok
        assert score.cycles is None and score.outputs is None
        assert score.error

    def test_cycle_budget_exhaustion_is_classified(self):
        array = WarpArrayModel()
        result = SequentialCompiler(array=array).compile(LOOP8)
        score = score_module(result.download, [[]], array, max_cycles=10)
        assert not score.ok
        assert score.error

    def test_cycles_sum_across_input_sets(self):
        array = WarpArrayModel()
        result = SequentialCompiler(array=array).compile(LOOP8)
        one = score_module(result.download, [[]], array)
        two = score_module(result.download, [[], []], array)
        assert two.cycles == 2 * one.cycles
        assert two.outputs == ((), ())


class TestSeededInputs:
    def test_seeded_input_sets_are_pinned(self):
        # The synthetic scoring inputs feed the variant-score cache key;
        # they must be bit-stable across platforms and releases.
        assert seeded_input_sets(7, width=3, sets=2) == [
            [-3.844, 0.286, 1.268],
            [3.571, -3.652, -1.078],
        ]

    def test_input_digest_is_pinned(self):
        digest = input_set_digest(seeded_input_sets(7, width=3, sets=2))
        assert digest == (
            "b891b83f82c5d560e6c17897f568120a"
            "252c3d98216139676bd458ba675f1716"
        )

    def test_different_seeds_differ(self):
        assert seeded_input_sets(0) != seeded_input_sets(1)
        assert input_set_digest(seeded_input_sets(0)) != input_set_digest(
            seeded_input_sets(1)
        )

    def test_digest_distinguishes_set_boundaries(self):
        # [[1,2],[3]] and [[1],[2,3]] flatten identically; the digest
        # must still tell them apart.
        a = input_set_digest([[1.0, 2.0], [3.0]])
        b = input_set_digest([[1.0], [2.0, 3.0]])
        assert a != b
