"""Cycle-level executor semantics, tested with hand-built bundles.

These pin down the timing contract the scheduler compiles against:
reads at issue, write-back after latency, bundle atomicity.
"""

import pytest

from repro.asmlink.objformat import (
    AssembledFunction,
    Bundle,
    CellProgram,
    DownloadModule,
    MachineOp,
)
from repro.ir.instructions import Opcode
from repro.machine.resources import FUClass, PhysReg
from repro.machine.warp_array import WarpArrayModel
from repro.warpsim.array_runner import run_module

R0 = PhysReg("i", 0)
R1 = PhysReg("i", 1)
R2 = PhysReg("i", 2)


def op(opcode, dest=None, operands=(), latency=1, fu=FUClass.IALU, **kw):
    return MachineOp(
        op=opcode, fu=fu, latency=latency, dest=dest, operands=operands, **kw
    )


def run_bundles(bundles):
    function = AssembledFunction(
        name="main", section_name="s", bundles=bundles
    )
    program = CellProgram(
        section_name="s",
        functions={"main": function},
        entry="main",
        frame_bases={"main": 0},
        data_words=0,
    )
    module = DownloadModule(module_name="t", cell_programs={0: program})
    return run_module(module, [], array=WarpArrayModel(cell_count=1))


def bundle(*ops):
    b = Bundle()
    for one in ops:
        b.add(one)
    return b


class TestWriteBackTiming:
    def test_read_in_same_cycle_sees_old_value(self):
        """A reader issued in the same cycle as a writer gets the OLD
        value (reads at issue, writes after latency)."""
        bundles = [
            # r0 := 5
            bundle(op(Opcode.LI, dest=R0, operands=(5,))),
            # simultaneously: r0 := 9 (IALU)  and  r1 := r0 (FALU-free? both
            # int: use MOV on IALU + ADD? two IALU ops collide) — put the
            # reader on the integer ALU and the writer as a LOAD-free LI on
            # ... LI is IALU too; use MEM-free approach: reader = ADD on
            # IALU, writer = RECV? Simplest: writer LI on IALU in cycle 2,
            # reader uses value written at cycle 1 with latency 2.
            bundle(op(Opcode.LI, dest=R0, operands=(9,), latency=3)),
            # r0's new value lands at cycle 1+3=4; this read at cycle 2
            # still sees 5.
            bundle(op(Opcode.ADD, dest=R1, operands=(R0, 0))),
            bundle(),
            bundle(),  # by now r0 == 9
            bundle(op(Opcode.ADD, dest=R2, operands=(R0, 0))),
            bundle(),
            bundle(
                op(Opcode.SEND, operands=(R1,), fu=FUClass.IO),
            ),
            bundle(
                op(Opcode.SEND, operands=(R2,), fu=FUClass.IO),
            ),
            bundle(op(Opcode.RET, fu=FUClass.SEQ)),
        ]
        result = run_bundles(bundles)
        assert result.outputs == [5, 9]

    def test_branch_reads_condition_at_issue(self):
        bundles = [
            bundle(op(Opcode.LI, dest=R0, operands=(1,))),
            bundle(op(Opcode.LI, dest=R0, operands=(0,), latency=5)),
            # Branch at cycle 2 still sees r0 == 1 -> taken.
            bundle(
                op(
                    Opcode.BR,
                    operands=(R0,),
                    fu=FUClass.SEQ,
                    labels=(4, 3),
                )
            ),
            bundle(op(Opcode.RET, fu=FUClass.SEQ)),  # not taken path
            bundle(op(Opcode.SEND, operands=(7,), fu=FUClass.IO)),
            bundle(op(Opcode.RET, fu=FUClass.SEQ)),
        ]
        result = run_bundles(bundles)
        assert result.outputs == [7]

    def test_store_load_latency(self):
        bundles = [
            # store 42 to address 0 (lands end of cycle 0 -> visible @1)
            bundle(
                op(
                    Opcode.STORE,
                    operands=(0, 42),
                    fu=FUClass.MEM,
                    array_offset=0,
                )
            ),
            bundle(
                op(
                    Opcode.LOAD,
                    dest=R0,
                    operands=(0,),
                    fu=FUClass.MEM,
                    latency=2,
                    array_offset=0,
                )
            ),
            bundle(),
            bundle(),
            bundle(op(Opcode.SEND, operands=(R0,), fu=FUClass.IO)),
            bundle(op(Opcode.RET, fu=FUClass.SEQ)),
        ]
        result = run_bundles(bundles)
        assert result.outputs == [42]

    def test_ops_in_one_bundle_read_consistent_state(self):
        bundles = [
            bundle(op(Opcode.LI, dest=R0, operands=(10,))),
            # Both read r0 == 10 even though one writes it.
            bundle(
                op(Opcode.ADD, dest=R0, operands=(R0, 1)),
                op(
                    Opcode.ADD,
                    dest=PhysReg("f", 0),
                    operands=(R0, R0),
                    fu=FUClass.FALU,
                    latency=5,
                ),
            ),
            bundle(),
            bundle(),
            bundle(),
            bundle(),
            bundle(
                op(
                    Opcode.SEND,
                    operands=(PhysReg("f", 0),),
                    fu=FUClass.IO,
                )
            ),
            bundle(op(Opcode.SEND, operands=(R0,), fu=FUClass.IO)),
            bundle(op(Opcode.RET, fu=FUClass.SEQ)),
        ]
        result = run_bundles(bundles)
        assert result.outputs == [20.0, 11]


class TestTrapPaths:
    def test_fall_off_function_end_traps(self):
        from repro.warpsim.cell_state import SimulationError

        bundles = [bundle(op(Opcode.LI, dest=R0, operands=(1,)))]
        with pytest.raises(SimulationError, match="past the end"):
            run_bundles(bundles)

    def test_unknown_callee_traps(self):
        from repro.warpsim.cell_state import SimulationError

        bundles = [
            bundle(
                op(
                    Opcode.CALL,
                    fu=FUClass.SEQ,
                    latency=4,
                    callee="ghost",
                )
            ),
            bundle(op(Opcode.RET, fu=FUClass.SEQ)),
        ]
        with pytest.raises(SimulationError, match="unknown function"):
            run_bundles(bundles)
