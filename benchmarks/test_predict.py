"""Predictive-compilation benchmark: replayed edit sessions with and
without watch-mode speculation.

The claim being guarded: for an editor streaming edits to a predict-
enabled service, the *interactive* submit-to-done p95 with speculation
must be well under the cold-compile p95 — the speculative batch job
precompiled the dirty functions during think time, so the submit is
cache hits.  The acceptance bar from the issue: speculated p95 <
0.6x cold p95, with bit-identical digests.

Results land in ``benchmarks/out/BENCH_predict.json`` — the trajectory
point the CI predict job archives.
"""

import json
import platform

from repro.cache import ArtifactCache
from repro.parallel.local import SerialBackend
from repro.predict import CostModel, ObservationStore
from repro.service import CompileService, EditSessionSpec, replay_edit_session

SPEC = EditSessionSpec(
    seed=42,
    edits=6,
    functions=4,
    size_class="small",
)

#: the issue's acceptance bar: speculated p95 < 0.6x cold p95
ADVANTAGE_BAR = 0.6


def _speculating_service(tmp_path):
    cache = ArtifactCache(str(tmp_path / "cache"))
    model = CostModel(ObservationStore(str(tmp_path / "obs")))
    return CompileService(
        SerialBackend(),
        cache,
        max_queued=16,
        cost_model=model,
        speculation=True,
    )


def test_speculation_beats_cold_compile_p95(results_dir, tmp_path):
    # Speculated: every edit is watched first; the interactive submit
    # lands after the speculative job settled (best-case think time).
    with _speculating_service(tmp_path) as service:
        speculated = replay_edit_session(service, SPEC, speculate=True)

    # Cold: the same edit sources, submitted with no cache, no model,
    # no speculation — what the editor pays without watch mode.
    with CompileService(SerialBackend(), max_queued=16) as service:
        cold = replay_edit_session(service, SPEC, speculate=False)

    advantage = (
        cold.interactive_p95 / speculated.interactive_p95
        if speculated.interactive_p95 > 0
        else float("inf")
    )
    summary = {
        "benchmarks": {
            "edit_session_speculated": speculated.to_dict(),
            "edit_session_cold": cold.to_dict(),
        },
        "speculation_advantage": round(advantage, 3),
        "advantage_bar": ADVANTAGE_BAR,
        "workers": 1,
        "python": platform.python_version(),
    }
    (results_dir / "BENCH_predict.json").write_text(
        json.dumps(summary, indent=2) + "\n"
    )
    (results_dir / "predict_replay.txt").write_text(
        f"{SPEC.edits} edits x {SPEC.functions} {SPEC.size_class} "
        f"function(s), seed {SPEC.seed}\n"
        f"interactive p95 speculated: {speculated.interactive_p95:.3f}s\n"
        f"interactive p95 cold:       {cold.interactive_p95:.3f}s\n"
        f"advantage:                  {advantage:.2f}x "
        f"(bar: >{1 / ADVANTAGE_BAR:.2f}x)\n"
        f"cache-served submits:       {speculated.cache_served}\n"
    )
    print(
        f"\npredict replay: speculated p95 "
        f"{speculated.interactive_p95:.3f}s vs cold "
        f"{cold.interactive_p95:.3f}s ({advantage:.2f}x), "
        f"{speculated.cache_served} task(s) cache-served"
    )

    # Every edit completed on both sides, and speculation changed
    # nothing about the results: digests are bit-identical per step.
    assert speculated.failed == 0 and cold.failed == 0
    assert speculated.completed == SPEC.edits
    assert cold.completed == SPEC.edits
    assert speculated.digests == cold.digests

    # Speculation actually happened and served the submits from cache.
    assert speculated.speculation.get("launched", 0) >= 1
    assert speculated.cache_served > 0

    # The acceptance bar: speculated p95 < 0.6x cold p95.
    assert speculated.interactive_p95 < ADVANTAGE_BAR * cold.interactive_p95


def test_replay_plan_is_deterministic(tmp_path):
    """Same seed, same plan; replay twice through fresh services and
    digests per step must be identical (the bench compares p95s across
    two services, which is only meaningful if the work is identical)."""
    from repro.service import plan_edit_session

    first = plan_edit_session(SPEC)
    second = plan_edit_session(SPEC)
    assert [s.source for s in first] == [s.source for s in second]
    assert [s.function for s in first] == [s.function for s in second]
