"""Fault-tolerant task execution.

The paper's §5.2 is a lament about exactly this: "it is hard to make a
parallel program reliable ... the application code becomes unwieldy as it
tries to account for all possible failures in the child processes and
their host processors."  This module packages that unwieldy code once:

- :class:`RetryingBackend` wraps any execution backend and resubmits
  failed function-master tasks (on the real network: a crashed Lisp
  process or a rebooted workstation) until they succeed or a retry budget
  is exhausted;
- :class:`FlakyBackend` is the matching failure injector: it makes an
  inner backend fail deterministically (seeded), so recovery paths are
  testable and benchmarkable.

Because function masters are pure (same task -> same object code), retry
is always safe: the section master cannot tell a first-try result from a
third-try result, and the final download module stays bit-identical.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

from ..driver.function_master import FunctionTask, FunctionTaskResult
from .backend import ExecutionBackend


class FunctionMasterFailure(Exception):
    """One function master died (injected or real)."""

    def __init__(self, task: FunctionTask, reason: str):
        self.task = task
        self.reason = reason
        super().__init__(
            f"function master {task.section_name}.{task.function_name} "
            f"failed: {reason}"
        )


class RetryBudgetExceeded(Exception):
    """Tasks kept failing past the retry budget."""

    def __init__(self, failures: List[FunctionMasterFailure]):
        self.failures = failures
        names = ", ".join(
            f"{f.task.section_name}.{f.task.function_name}" for f in failures
        )
        super().__init__(f"gave up on: {names}")


def _task_key(task: FunctionTask) -> Tuple[str, str]:
    return (task.section_name, task.function_name)


class FlakyBackend:
    """Deterministic failure injection around any backend.

    Each (task, attempt) pair fails with probability ``failure_rate``,
    decided by a private seeded generator — the same seed always produces
    the same crash pattern, so tests and benchmarks are reproducible.
    """

    def __init__(
        self,
        inner: ExecutionBackend,
        failure_rate: float,
        seed: int = 0,
        max_failures_per_task: Optional[int] = None,
    ):
        if not 0.0 <= failure_rate < 1.0:
            raise ValueError(f"failure rate must be in [0, 1), got {failure_rate}")
        self.inner = inner
        self.failure_rate = failure_rate
        self._rng = random.Random(seed)
        self.max_failures_per_task = max_failures_per_task
        self._attempts: Dict[Tuple[str, str], int] = {}
        self.injected_failures = 0

    @property
    def worker_count(self) -> int:
        return self.inner.worker_count

    @property
    def effective_worker_count(self) -> int:
        return getattr(
            self.inner, "effective_worker_count", self.inner.worker_count
        )

    def run_tasks(self, tasks: List[FunctionTask]) -> List[FunctionTaskResult]:
        results, failures = self.run_tasks_partial(tasks)
        if failures:
            raise failures[0]
        return results

    def run_tasks_partial(
        self, tasks: List[FunctionTask]
    ) -> Tuple[List[FunctionTaskResult], List[FunctionMasterFailure]]:
        """Run tasks, injecting crashes; survivors are still computed."""
        doomed: List[FunctionMasterFailure] = []
        survivors: List[FunctionTask] = []
        for task in tasks:
            key = _task_key(task)
            attempt = self._attempts.get(key, 0)
            self._attempts[key] = attempt + 1
            fail = self._rng.random() < self.failure_rate
            if self.max_failures_per_task is not None:
                fail = fail and attempt < self.max_failures_per_task
            if fail:
                self.injected_failures += 1
                doomed.append(
                    FunctionMasterFailure(
                        task, f"injected crash on attempt {attempt + 1}"
                    )
                )
            else:
                survivors.append(task)
        results = self.inner.run_tasks(survivors) if survivors else []
        return results, doomed


class RetryingBackend:
    """Resubmit failed function-master tasks, like a careful §5.2 master.

    Works with any inner backend: backends exposing
    ``run_tasks_partial`` (like :class:`FlakyBackend`) report per-task
    failures in bulk; plain backends are driven one task at a time so a
    single crash cannot take down the whole batch.

    The wrapper is transparent: besides forwarding
    ``effective_worker_count`` and the streaming API, unknown attributes
    (``is_warm``, ``dispatches``, ``shutdown``, ...) delegate to the
    inner backend instead of being hidden by the wrapper.
    """

    def __init__(self, inner, max_attempts: int = 3):
        if max_attempts < 1:
            raise ValueError(f"need at least one attempt, got {max_attempts}")
        self.inner = inner
        self.max_attempts = max_attempts
        self.retries_performed = 0

    def __getattr__(self, name: str):
        # Only reached for attributes RetryingBackend itself lacks.  The
        # __dict__ lookup avoids recursing before __init__ ran (e.g.
        # during unpickling).
        inner = self.__dict__.get("inner")
        if inner is None:
            raise AttributeError(name)
        return getattr(inner, name)

    @property
    def worker_count(self) -> int:
        return self.inner.worker_count

    @property
    def effective_worker_count(self) -> int:
        return getattr(
            self.inner, "effective_worker_count", self.inner.worker_count
        )

    def run_tasks(self, tasks: List[FunctionTask]) -> List[FunctionTaskResult]:
        return list(self.run_tasks_streaming(tasks))

    def run_tasks_streaming(
        self, tasks: List[FunctionTask]
    ) -> Iterator[FunctionTaskResult]:
        """Yield each task's result as soon as an attempt produces it;
        failed tasks re-enter the pending set for the next round."""
        pending = list(tasks)
        last_failures: List[FunctionMasterFailure] = []
        for attempt in range(1, self.max_attempts + 1):
            if not pending:
                break
            if attempt > 1:
                self.retries_performed += len(pending)
            results, failures = self._attempt(pending)
            yield from results
            pending = [f.task for f in failures]
            last_failures = failures
        if pending:
            raise RetryBudgetExceeded(last_failures)

    def _attempt(self, tasks: List[FunctionTask]):
        if hasattr(self.inner, "run_tasks_partial"):
            return self.inner.run_tasks_partial(tasks)
        results: List[FunctionTaskResult] = []
        failures: List[FunctionMasterFailure] = []
        for task in tasks:
            try:
                results.extend(self.inner.run_tasks([task]))
            except FunctionMasterFailure as failure:
                failures.append(failure)
            except Exception as error:  # a real child-process death
                failures.append(FunctionMasterFailure(task, repr(error)))
        return results, failures
