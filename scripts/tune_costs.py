"""Calibration helper: sweep the figure workloads under a cost model.

Run:  python scripts/tune_costs.py [key=value ...]

Prints the Fig 3-10 summary table plus the Fig 11 user-program series so
cost-model constants can be tuned against the paper's qualitative targets
(see EXPERIMENTS.md).  Profiles are compiled once and cached on disk under
.cache/ so iterating on constants is fast.
"""

from __future__ import annotations

import pickle
import pathlib
import sys

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent / "src"))

from repro.cluster.cluster import ClusterSimulation
from repro.cluster.costs import CostModel
from repro.metrics.overhead import compute_overhead
from repro.parallel.schedule import (
    fcfs_assignment,
    grouped_lpt_assignment,
    one_function_per_processor,
)
from repro.workloads import SIZE_ORDER

CACHE = pathlib.Path(__file__).resolve().parent / ".cache"


def cached_profile(key: str, build):
    CACHE.mkdir(exist_ok=True)
    path = CACHE / f"{key}.pkl"
    if path.exists():
        with open(path, "rb") as fh:
            return pickle.load(fh)
    profile = build()
    with open(path, "wb") as fh:
        pickle.dump(profile, fh)
    return profile


def synthetic_profile(size, n):
    def build():
        from repro.driver.sequential import SequentialCompiler
        from repro.workloads import synthetic_program

        return SequentialCompiler().compile(synthetic_program(size, n)).profile

    return cached_profile(f"synthetic_{size}_{n}", build)


def user_profile():
    def build():
        from repro.driver.sequential import SequentialCompiler
        from repro.workloads import user_program

        return SequentialCompiler().compile(user_program()).profile

    return cached_profile("user_program", build)


def main(argv):
    costs = CostModel()
    for arg in argv:
        key, _, value = arg.partition("=")
        if not hasattr(costs, key):
            raise SystemExit(f"unknown cost key {key!r}")
        setattr(costs, key, float(value))
    sim = ClusterSimulation(costs)

    print(
        f"{'size':8s} {'n':>2s} {'seq_el':>9s} {'par_el':>9s} "
        f"{'speedup':>7s} {'tot%':>6s} {'sys%':>6s} {'impl%':>6s}"
    )
    for size in SIZE_ORDER:
        for n in (1, 2, 4, 8):
            profile = synthetic_profile(size, n)
            seq = sim.run_sequential(profile)
            par = sim.run_parallel(
                profile, one_function_per_processor(profile.functions)
            )
            ovh = compute_overhead(seq, par, n)
            print(
                f"{size:8s} {n:2d} {seq.elapsed:9.1f} {par.elapsed:9.1f} "
                f"{seq.elapsed / par.elapsed:7.2f} {ovh.relative_total:6.1f} "
                f"{ovh.relative_system:6.1f} {ovh.relative_implementation:6.1f}"
            )

    print("\nuser program (grouped LPT):")
    profile = user_profile()
    seq = sim.run_sequential(profile)
    for p in (2, 3, 5, 9):
        par = sim.run_parallel(
            profile, grouped_lpt_assignment(profile.functions, p)
        )
        print(f"  p={p}: speedup {seq.elapsed / par.elapsed:5.2f}")
    par = sim.run_parallel(
        profile, one_function_per_processor(profile.functions)
    )
    print(f"  p=9 (one per processor, FCFS order): {seq.elapsed / par.elapsed:5.2f}")


if __name__ == "__main__":
    main(sys.argv[1:])
