"""Persistent link/module cache (the incremental back end's disk tier).

Phase 4 consumes the section masters' recombined object functions and
nothing else: :func:`~repro.asmlink.linker.link_section` is a pure
function of one section's object functions (in source order) and the
target cell's data-memory size, and
:func:`~repro.asmlink.download.build_download_module` is a pure function
of the linked programs, the sections' cell ranges, and the module's
diagnostics text.  That purity makes the linked tail cacheable the same
way phases 2-3 are:

- **section tier** — one :class:`~repro.asmlink.objformat.CellProgram`
  per section, keyed by the link salt, the section's identity and cell
  range, the *ordered* payload digests of its object functions (the
  same sha256 the supervisor validates results against, so the key is
  free at link time), and the cell's data-memory size.  A 1-function
  edit changes exactly one section's digest list, so a warm recompile
  re-links exactly that section;
- **module tier** — the whole
  :class:`~repro.asmlink.objformat.DownloadModule`, keyed by the module
  fingerprint (every section's key material plus the array's cell count
  and the diagnostics text the module embeds).  A fully-warm recompile
  skips phase 4 entirely.

Invalidation: any object function's content changed (payload digest),
a section's cell range or the cell/array geometry changed, diagnostics
changed (module tier), or the compiler/link schema version bumped (the
salt).  Both tiers ride :class:`~repro.cache.store.PickleStore` —
atomic writes, corrupt-entry quarantine, LRU-by-mtime size bound.
"""

from __future__ import annotations

import hashlib
import os
from typing import Iterable, Optional, Sequence, Tuple

from ..asmlink.objformat import CellProgram, DownloadModule
from .fingerprint import _Hasher, compiler_salt
from .store import DEFAULT_MAX_BYTES, CacheStats, PickleStore

#: Bump whenever the CellProgram/DownloadModule layout or the meaning of
#: a link key changes; old entries become unreachable rather than wrong.
LINK_SCHEMA_VERSION = 1


def link_salt() -> str:
    """Version salt for link-tier keys (compiler salt + link schema)."""
    return f"{compiler_salt()}+link{LINK_SCHEMA_VERSION}"


def section_link_key(
    section_name: str,
    first_cell: int,
    last_cell: int,
    payload_digests: Sequence[str],
    data_memory_words: int,
    *,
    salt: Optional[str] = None,
) -> str:
    """Cache key for one section's linked :class:`CellProgram`.

    ``payload_digests`` must be in *source order* — layout (frame bases,
    entry selection) depends on function order, so reordering functions
    must miss even when the set of digests is unchanged.
    """
    h = _Hasher()
    h.feed(
        salt if salt is not None else link_salt(),
        section_name,
        first_cell,
        last_cell,
        data_memory_words,
        len(payload_digests),
    )
    for digest in payload_digests:
        h.feed(digest)
    return h.hexdigest()


def module_link_key(
    module_name: str,
    sections: Iterable[Tuple[str, int, int, Sequence[str]]],
    diagnostics_text: str,
    data_memory_words: int,
    cell_count: int,
    *,
    salt: Optional[str] = None,
) -> str:
    """Cache key for a whole :class:`DownloadModule`.

    ``sections`` iterates ``(name, first_cell, last_cell, digests)`` in
    module order.  The diagnostics text is hashed in because the module
    embeds it verbatim; the array's cell count is hashed in because the
    sections' cell ranges were validated against it.
    """
    h = _Hasher()
    h.feed(
        salt if salt is not None else link_salt(),
        module_name,
        hashlib.sha256(diagnostics_text.encode("utf-8")).hexdigest(),
        data_memory_words,
        cell_count,
    )
    for name, first_cell, last_cell, digests in sections:
        h.feed(name, first_cell, last_cell, len(digests))
        for digest in digests:
            h.feed(digest)
    return h.hexdigest()


class SectionLinkStore(PickleStore):
    """Disk tier for per-section linked cell programs."""

    SUBDIR = "link"
    PAYLOAD_TYPE = CellProgram

    def get(self, fingerprint: str) -> Optional[CellProgram]:
        return super().get(fingerprint)


class ModuleStore(PickleStore):
    """Disk tier for whole download modules."""

    SUBDIR = "modules"
    PAYLOAD_TYPE = DownloadModule

    def get(self, fingerprint: str) -> Optional[DownloadModule]:
        return super().get(fingerprint)


class LinkCache:
    """Both link tiers behind one handle.

    Lives under ``<cache_dir>/link/`` and ``<cache_dir>/modules/``
    beside the artifact cache's ``objects/`` and the parse cache's
    ``parse/``; the CLI wires all tiers to the same directory.
    """

    def __init__(
        self,
        cache_dir: Optional[os.PathLike] = None,
        max_bytes: int = DEFAULT_MAX_BYTES,
    ):
        self.sections = SectionLinkStore(cache_dir, max_bytes)
        self.modules = ModuleStore(cache_dir, max_bytes)
        self.cache_dir = self.sections.cache_dir

    @property
    def stats(self) -> CacheStats:
        """Combined counters across both tiers (for the stats line)."""
        merged = CacheStats()
        for store in (self.sections, self.modules):
            merged.hits += store.stats.hits
            merged.misses += store.stats.misses
            merged.evictions += store.stats.evictions
            merged.corrupt += store.stats.corrupt
        return merged

    def entry_count(self) -> int:
        return self.sections.entry_count() + self.modules.entry_count()

    def size_bytes(self) -> int:
        return self.sections.size_bytes() + self.modules.size_bytes()

    def clear(self) -> int:
        return self.sections.clear() + self.modules.clear()
