#!/usr/bin/env python
"""CI smoke test for watch-mode speculation over the full network stack.

Starts ``warpcc serve --predict`` as a real subprocess with a fresh
cache directory, replays a fixed-seed edit session through the ``watch``
protocol verb (each edit speculated, then submitted interactively), and
checks:

- every interactive submit's digest matches a direct in-process compile
  of the same source (speculation changes *when* work runs, never
  *what* it produces);
- the speculative jobs actually launched and the final submits were
  served from the shared artifact cache;
- the ``warpcc watch --once`` CLI round-trips against the same server.

Exits non-zero (with a diagnostic) on any mismatch.  Usage::

    PYTHONPATH=src python scripts/watch_smoke.py [--edits N]
"""

import argparse
import os
import pathlib
import re
import subprocess
import sys
import tempfile

REPO = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))

from repro.driver.sequential import SequentialCompiler  # noqa: E402
from repro.service import ServiceClient  # noqa: E402
from repro.service.loadgen import (  # noqa: E402
    EditSessionSpec,
    plan_edit_session,
)

BANNER = re.compile(r"warpcc service on (\S+:\d+)")


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--edits", type=int, default=4)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--timeout", type=float, default=120.0)
    args = parser.parse_args()

    spec = EditSessionSpec(
        seed=args.seed, edits=args.edits, functions=3, size_class="tiny"
    )
    steps = plan_edit_session(spec)
    expected = [
        SequentialCompiler().compile(step.source).digest for step in steps
    ]

    with tempfile.TemporaryDirectory(prefix="warpcc-watch-smoke-") as tmp:
        env = {
            **os.environ,
            "PYTHONPATH": str(REPO / "src"),
            "WARPCC_CACHE_DIR": tmp,
        }
        server = subprocess.Popen(
            [
                sys.executable, "-m", "repro.cli", "serve",
                "--workers", "2", "--predict",
            ],
            cwd=REPO,
            env=env,
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
        )
        try:
            banner = server.stdout.readline()
            match = BANNER.search(banner)
            if not match:
                print(f"no service banner, got: {banner!r}", file=sys.stderr)
                return 1
            address = match.group(1)
            print(f"service up at {address}")

            client = ServiceClient(address, timeout=args.timeout)
            failures = 0
            cache_served_total = 0
            for index, step in enumerate(steps):
                outcome = client.watch_update(
                    step.source, watch="smoke", filename="smoke.w2"
                )
                if outcome["job"] is not None:
                    client.wait(outcome["job"], timeout=args.timeout)
                job = client.submit_and_wait(
                    step.source,
                    tenant="editor",
                    filename="smoke.w2",
                    priority="interactive",
                    timeout=args.timeout,
                )
                cache_served_total += job.get("cache_served", 0)
                if job["state"] != "done":
                    print(
                        f"edit {index}: state {job['state']}: "
                        f"{job.get('error')}",
                        file=sys.stderr,
                    )
                    failures += 1
                elif job["digest"] != expected[index]:
                    print(
                        f"edit {index}: DIGEST MISMATCH vs direct compile",
                        file=sys.stderr,
                    )
                    failures += 1
                else:
                    print(
                        f"edit {index} ({step.function}): speculation "
                        f"{outcome['reason']}, submit done, "
                        f"{job['cache_served']} task(s) from cache, "
                        "digest identical"
                    )

            status = client.watch_status()
            stats = status["stats"]
            print(
                f"speculation: {stats['launched']} launched / "
                f"{stats['updates']} updates, "
                f"{stats['superseded']} superseded"
            )
            if stats["launched"] < 1:
                print("no speculative job ever launched", file=sys.stderr)
                failures += 1
            if cache_served_total < 1:
                print(
                    "no interactive submit was served from cache",
                    file=sys.stderr,
                )
                failures += 1

            # The CLI round-trip: one more edit via `warpcc watch --once`.
            with tempfile.NamedTemporaryFile(
                "w", suffix=".w2", delete=False
            ) as handle:
                handle.write(steps[-1].source)
                watched_file = handle.name
            try:
                cli = subprocess.run(
                    [
                        sys.executable, "-m", "repro.cli", "watch",
                        watched_file, "--once", "--connect", address,
                        "--watch-key", "smoke-cli",
                    ],
                    cwd=REPO,
                    env=env,
                    capture_output=True,
                    text=True,
                    timeout=args.timeout,
                )
            finally:
                os.unlink(watched_file)
            if cli.returncode != 0:
                print(
                    f"warpcc watch --once failed: {cli.stderr}",
                    file=sys.stderr,
                )
                failures += 1
            else:
                print(f"warpcc watch --once: {cli.stdout.strip()}")

            client.shutdown(drain=True)
            server.wait(timeout=args.timeout)
            if failures:
                return 1
            print("watch smoke: OK")
            return 0
        finally:
            if server.poll() is None:
                server.terminate()
                server.wait(timeout=10)


if __name__ == "__main__":
    sys.exit(main())
