"""Supervised task execution: deadlines, hedging, quarantine, isolation.

The paper's §5.2 observes that on a network of autonomous workstations
"it is hard to make a parallel program reliable": the master must survive
crashed Lisp processes, rebooted hosts, *and* arbitrarily slow nodes —
first-come-first-served dispatch means one wedged workstation can hold a
whole section hostage.  :class:`SupervisedBackend` packages the careful
master the paper wished for, around any execution backend:

1. **Per-task deadlines.**  Each attempt gets a deadline derived from the
   §4.3 cost estimate (``max(floor, multiplier * cost_hint)``, or a fixed
   ``task_timeout``).  Backends that emit ``("start", task)`` events have
   the deadline armed when the attempt actually begins, so queueing
   behind other tasks never counts against it; other backends measure
   from dispatch.  An attempt that misses its deadline is abandoned and
   resubmitted; if its late result shows up anyway, first-result-wins
   applies and the duplicate is dropped.

2. **Straggler hedging.**  Once ``hedge_after`` of the wave has resolved,
   laggards get a duplicate attempt launched alongside the original.
   Function masters are pure — same task, same object code — so whichever
   attempt finishes first is kept and the other deduped by task key.

3. **Worker health and quarantine.**  Failures are attributed to the
   worker that produced them (or to the farm as a whole when the backend
   can't say).  ``quarantine_after`` consecutive failures put a worker in
   timed quarantine with exponentially backed-off re-admission.  When
   *every* worker is quarantined, dispatch gracefully degrades to the
   in-process fallback (a :class:`~repro.parallel.local.SerialBackend`)
   instead of failing the build.

4. **Poison-task isolation.**  A task that fails on ``poison_threshold``
   distinct workers (or exhausts ``max_attempts``) is pulled out of the
   farm and compiled in-process once, to capture the real traceback.  If
   even that fails, the function is surfaced as a stubbed, per-function
   diagnostic while the rest of the module still compiles.

5. **Result validation.**  Function masters seal a payload digest over
   the object code before it crosses the IPC boundary; the supervisor
   re-derives it on receipt.  A mismatch is treated as an attempt
   failure — a corrupted payload is re-run, never linked.

The supervisor consumes dispatches through whatever incremental surface
the inner backend offers (``run_tasks_events`` > ``run_tasks_partial`` >
streaming), feeding an event queue from daemon dispatch threads so the
consuming section master keeps recombining while stragglers are hedged.
"""

from __future__ import annotations

import queue
import threading
import time
import traceback
from dataclasses import dataclass, field, replace
from typing import Dict, Iterator, List, Optional, Set, Tuple

from ..asmlink.objformat import ObjectFunction
from ..driver.function_master import (
    FunctionTask,
    FunctionTaskResult,
    phase1_cached,
    result_payload_digest,
    run_compile_task,
)
from ..driver.results import FunctionReport
from .backend import stream_task_results
from .fault_tolerance import FunctionMasterFailure, _task_key
from .local import SerialBackend

#: pseudo-worker for failures the backend can't attribute to a host —
#: health recorded against it tracks the farm as a whole.
FARM = "<farm>"

#: sentinel distinguishing "no entry" from "entry with no deadline yet"
_MISSING = object()


@dataclass
class SupervisionStats:
    """Counters for one supervisor's lifetime (cumulative across
    compiles; the driver snapshots before/after to get per-compile
    deltas)."""

    timeouts: int = 0
    hedges_launched: int = 0
    hedges_won: int = 0
    retries: int = 0
    quarantines: int = 0
    poisoned_tasks: int = 0
    degradations: int = 0
    corrupt_payloads: int = 0
    late_duplicates: int = 0

    def copy(self) -> "SupervisionStats":
        return replace(self)


@dataclass
class _WorkerHealth:
    consecutive_failures: int = 0
    quarantined_until: float = 0.0
    spells: int = 0


class WorkerHealthTracker:
    """Per-worker consecutive-failure counting with timed quarantine.

    ``quarantine_after`` consecutive failures start a quarantine spell of
    ``backoff_base * 2**(spells-1)`` seconds (capped at ``backoff_cap``) —
    a worker that keeps misbehaving after re-admission is benched for
    exponentially longer.  Any success resets the consecutive count.
    """

    def __init__(
        self,
        quarantine_after: int = 2,
        backoff_base: float = 0.25,
        backoff_cap: float = 30.0,
    ):
        if quarantine_after < 1:
            raise ValueError(
                f"quarantine_after must be positive, got {quarantine_after}"
            )
        self.quarantine_after = quarantine_after
        self.backoff_base = backoff_base
        self.backoff_cap = backoff_cap
        self._workers: Dict[str, _WorkerHealth] = {}

    def record_success(self, worker: str) -> None:
        self._workers.setdefault(worker, _WorkerHealth()).consecutive_failures = 0

    def record_failure(self, worker: str, now: float) -> bool:
        """Record one failure; returns True when this failure *starts* a
        new quarantine spell."""
        health = self._workers.setdefault(worker, _WorkerHealth())
        health.consecutive_failures += 1
        if (
            health.consecutive_failures >= self.quarantine_after
            and health.quarantined_until <= now
        ):
            health.spells += 1
            pause = min(
                self.backoff_base * (2 ** (health.spells - 1)),
                self.backoff_cap,
            )
            health.quarantined_until = now + pause
            health.consecutive_failures = 0
            return True
        return False

    def quarantined(self, now: float) -> frozenset:
        return frozenset(
            name
            for name, health in self._workers.items()
            if health.quarantined_until > now
        )

    def all_quarantined(self, now: float, capacity: int) -> bool:
        """True when no worker is admissible: either the farm pseudo-worker
        is quarantined (unattributed failures piled up) or every named
        worker slot is benched."""
        benched = self.quarantined(now)
        if FARM in benched:
            return True
        named = len(benched - {FARM})
        return capacity > 0 and named >= capacity


class SupervisedBackend:
    """Wrap any backend with deadlines, hedging, quarantine, isolation.

    Parameters
    ----------
    task_timeout:
        Fixed per-attempt deadline in seconds.  ``None`` (default)
        derives the deadline from the task's cost hint as
        ``max(timeout_floor, timeout_multiplier * cost_hint)``; ``0``
        disables deadlines entirely.
    hedge_after:
        Fraction of the wave that must be resolved before laggards get
        duplicate attempts.  ``None`` disables hedging.
    hedge_min_age:
        Minimum seconds an attempt must have been running before it is
        hedged — keeps the no-fault overhead at zero for fast waves.
    max_attempts:
        Farm attempts per task (including hedges) before isolation.
    poison_threshold:
        Failures on this many *distinct* workers flag a task as poison.
    quarantine_after / quarantine_backoff / quarantine_cap:
        Health-tracker knobs (see :class:`WorkerHealthTracker`).
    fallback:
        Backend used once every worker is quarantined (default: a fresh
        in-process :class:`SerialBackend`).
    isolation_runner:
        Callable used to compile a poison task in-process (default:
        :func:`run_compile_task`); injectable for tests.
    clock:
        Monotonic time source; injectable for tests.

    The wrapper is transparent: unknown attributes delegate to the inner
    backend, and ``self.supervision`` / ``self.health`` persist across
    compiles so the driver can snapshot per-compile deltas.
    """

    def __init__(
        self,
        inner,
        task_timeout: Optional[float] = None,
        timeout_floor: float = 10.0,
        timeout_multiplier: float = 0.05,
        hedge_after: Optional[float] = 0.75,
        hedge_min_age: float = 1.0,
        max_attempts: int = 3,
        poison_threshold: int = 3,
        quarantine_after: int = 2,
        quarantine_backoff: float = 0.25,
        quarantine_cap: float = 30.0,
        fallback=None,
        isolation_runner=None,
        clock=time.monotonic,
        cost_provider=None,
        cost_observer=None,
    ):
        if max_attempts < 1:
            raise ValueError(f"need at least one attempt, got {max_attempts}")
        if poison_threshold < 1:
            raise ValueError(
                f"poison threshold must be positive, got {poison_threshold}"
            )
        if hedge_after is not None and not 0.0 < hedge_after <= 1.0:
            raise ValueError(
                f"hedge_after must be in (0, 1] or None, got {hedge_after}"
            )
        self.inner = inner
        self.task_timeout = task_timeout
        self.timeout_floor = timeout_floor
        self.timeout_multiplier = timeout_multiplier
        self.hedge_after = hedge_after
        self.hedge_min_age = hedge_min_age
        self.max_attempts = max_attempts
        self.poison_threshold = poison_threshold
        self.fallback = fallback if fallback is not None else SerialBackend()
        self.isolation_runner = (
            isolation_runner if isolation_runner is not None else run_compile_task
        )
        self.clock = clock
        #: pluggable cost seam: estimates in §4.3 hint units feed the
        #: per-attempt deadline; None means the static task hint.
        self.cost_provider = cost_provider
        #: Callable[[FunctionTask, float], None] told each task's
        #: measured wall clock — exactly once, for the attempt that won
        #: (the original on a clean run, the hedge when the hedge wins,
        #: the retry after a failure) — so supervision noise (abandoned
        #: deadlines, lost hedges, queue time) never poisons a learned
        #: cost model.  Isolated (poison) tasks are never reported.
        self.cost_observer = cost_observer
        self.supervision = SupervisionStats()
        self.health = WorkerHealthTracker(
            quarantine_after=quarantine_after,
            backoff_base=quarantine_backoff,
            backoff_cap=quarantine_cap,
        )

    def __getattr__(self, name: str):
        # Only reached for attributes SupervisedBackend itself lacks; the
        # __dict__ lookup avoids recursing before __init__ ran.
        inner = self.__dict__.get("inner")
        if inner is None:
            raise AttributeError(name)
        return getattr(inner, name)

    @property
    def worker_count(self) -> int:
        return self.inner.worker_count

    @property
    def effective_worker_count(self) -> int:
        return getattr(
            self.inner, "effective_worker_count", self.inner.worker_count
        )

    def cost_for(self, task: FunctionTask) -> float:
        """Cost in §4.3 hint units: the pluggable provider's estimate
        when one is set (static hint on any error), else the hint."""
        if self.cost_provider is not None:
            try:
                return float(self.cost_provider(task))
            except Exception:
                pass
        return float(task.cost_hint)

    def timeout_for(self, task: FunctionTask) -> Optional[float]:
        """Seconds this task's attempts may run, or None for no deadline."""
        if self.task_timeout is not None:
            return self.task_timeout if self.task_timeout > 0 else None
        return max(
            self.timeout_floor,
            self.timeout_multiplier * max(self.cost_for(task), 1.0),
        )

    def run_tasks(self, tasks: List[FunctionTask]) -> List[FunctionTaskResult]:
        return list(self.run_tasks_streaming(tasks))

    def run_tasks_streaming(
        self, tasks: List[FunctionTask]
    ) -> Iterator[FunctionTaskResult]:
        return _SupervisedRun(self, list(tasks)).run()


@dataclass
class _TaskState:
    task: FunctionTask
    attempts: int = 0
    failures: List[Tuple[Optional[str], str]] = field(default_factory=list)
    distinct_workers: Set[str] = field(default_factory=set)
    resolved: bool = False
    isolating: bool = False
    hedged: bool = False
    #: dispatch id -> deadline (monotonic seconds) or None
    active: Dict[int, Optional[float]] = field(default_factory=dict)
    last_started: float = 0.0
    #: dispatch id -> when *that* attempt began (launch, refined by the
    #: backend's "start" event) — per-dispatch so a winning hedge or
    #: retry is measured from its own start, not the original's
    started_at: Dict[int, float] = field(default_factory=dict)


@dataclass
class _Dispatch:
    id: int
    kind: str  # "wave" | "retry" | "hedge" | "fallback"
    keys: Set[tuple]
    abandoned: Set[tuple] = field(default_factory=set)
    failed: Set[tuple] = field(default_factory=set)
    delivered: Dict[tuple, int] = field(default_factory=dict)
    #: keys whose attempt the backend reported as actually started
    started: Set[tuple] = field(default_factory=set)
    #: deadlines armed on the backend's "start" event instead of at
    #: dispatch, so queueing behind other tasks doesn't count
    arm_on_start: bool = False
    error: Optional[BaseException] = None


class _SupervisedRun:
    """One streaming run: an event loop in the consuming thread fed by
    daemon dispatch threads.  All supervision state is touched only from
    the consumer side; dispatch threads just push events."""

    def __init__(self, sup: SupervisedBackend, tasks: List[FunctionTask]):
        self.sup = sup
        self.stats = sup.supervision
        self.health = sup.health
        self.tasks = tasks
        self.states: Dict[tuple, _TaskState] = {
            _task_key(task): _TaskState(task=task) for task in tasks
        }
        self.dispatches: Dict[int, _Dispatch] = {}
        self.events: "queue.Queue" = queue.Queue()
        self.yielded: Set[tuple] = set()
        self._next_id = 0

    # -- dispatch side ------------------------------------------------

    def _dispatch_thread(self, dispatch: _Dispatch, tasks, backend) -> None:
        put = self.events.put
        try:
            events = getattr(backend, "run_tasks_events", None)
            if events is not None:
                for kind, payload in events(tasks):
                    put((dispatch.id, kind, payload))
            elif hasattr(backend, "run_tasks_partial"):
                results, failures = backend.run_tasks_partial(tasks)
                for result in results:
                    put((dispatch.id, "result", result))
                for failure in failures:
                    put((dispatch.id, "failure", failure))
            else:
                for result in stream_task_results(backend, tasks):
                    put((dispatch.id, "result", result))
        except FunctionMasterFailure as failure:
            put((dispatch.id, "failure", failure))
        except BaseException as error:  # keep the real reason for the sweep
            put((dispatch.id, "broken", error))
        finally:
            put((dispatch.id, "done", None))

    def _launch(self, tasks: List[FunctionTask], kind: str) -> None:
        now = self.sup.clock()
        if kind != "fallback":
            capacity = getattr(self.sup.inner, "worker_count", 1)
            if self.health.all_quarantined(now, capacity):
                kind = "fallback"
                self.stats.degradations += 1
        if kind == "fallback":
            backend = self.sup.fallback
        else:
            backend = self.sup.inner
            exclude = getattr(backend, "exclude_workers", None)
            if exclude is not None:
                exclude(self.health.quarantined(now) - {FARM})
        dispatch = _Dispatch(
            id=self._next_id, kind=kind, keys={_task_key(t) for t in tasks}
        )
        dispatch.arm_on_start = kind != "fallback" and hasattr(
            backend, "run_tasks_events"
        )
        self._next_id += 1
        self.dispatches[dispatch.id] = dispatch
        for task in tasks:
            state = self.states[_task_key(task)]
            state.attempts += 1
            if kind == "fallback" or dispatch.arm_on_start:
                # fallback: the last resort must be allowed to finish.
                # arm_on_start: the deadline is armed when the backend
                # reports the attempt actually began, so time queued
                # behind other tasks doesn't count against it.
                deadline = None
            else:
                seconds = self.sup.timeout_for(task)
                deadline = None if seconds is None else now + seconds
            state.active[dispatch.id] = deadline
            state.last_started = now
            state.started_at[dispatch.id] = now
        thread = threading.Thread(
            target=self._dispatch_thread,
            args=(dispatch, list(tasks), backend),
            daemon=True,
        )
        thread.start()

    # -- consumer side ------------------------------------------------

    def run(self) -> Iterator[FunctionTaskResult]:
        if not self.tasks:
            return
        self._launch(self.tasks, "wave")
        while any(not s.resolved for s in self.states.values()):
            self._maybe_hedge()
            try:
                dispatch_id, kind, payload = self.events.get(
                    timeout=self._next_wake()
                )
            except queue.Empty:
                yield from self._expire(self.sup.clock())
                continue
            dispatch = self.dispatches.get(dispatch_id)
            if dispatch is None:
                continue
            if kind == "start":
                self._on_start(dispatch, payload)
            elif kind == "result":
                yield from self._on_result(dispatch, payload)
            elif kind == "failure":
                yield from self._on_failure(dispatch, payload)
            elif kind == "broken":
                dispatch.error = payload
            elif kind == "done":
                yield from self._on_done(dispatch)
            yield from self._expire(self.sup.clock())

    def _next_wake(self) -> Optional[float]:
        """Seconds until the earliest deadline or hedge-age wakeup; None
        blocks until the next event."""
        wakes: List[float] = []
        for state in self.states.values():
            if state.resolved:
                continue
            wakes.extend(
                deadline
                for deadline in state.active.values()
                if deadline is not None
            )
        if self._hedge_threshold_met():
            for state in self.states.values():
                if self._hedge_candidate(state, ignore_age=True):
                    wakes.append(state.last_started + self.sup.hedge_min_age)
        if not wakes:
            return None
        return max(0.01, min(wakes) - self.sup.clock())

    def _on_start(self, dispatch: _Dispatch, task: FunctionTask) -> None:
        """The backend reports an attempt actually began: arm the real
        per-attempt deadline now (arm-on-start dispatches launch with no
        deadline so queueing doesn't eat the budget)."""
        tkey = _task_key(task)
        dispatch.started.add(tkey)
        state = self.states.get(tkey)
        if state is None or state.resolved:
            return
        if dispatch.kind != "fallback" and dispatch.id in state.active:
            now = self.sup.clock()
            seconds = self.sup.timeout_for(state.task)
            if seconds is not None:
                state.active[dispatch.id] = now + seconds
            state.last_started = now
            state.started_at[dispatch.id] = now

    def _on_result(
        self, dispatch: _Dispatch, result: FunctionTaskResult
    ) -> Iterator[FunctionTaskResult]:
        rkey = (result.section_name, result.function_name)
        tkey = rkey if rkey in self.states else (result.section_name, None)
        state = self.states.get(tkey)
        if state is None:
            return  # a result for a task we never dispatched
        if result.payload_digest is not None and (
            result_payload_digest(result) != result.payload_digest
        ):
            self.stats.corrupt_payloads += 1
            yield from self._attempt_failed(
                dispatch, tkey, result.worker, "corrupt result payload"
            )
            return
        if dispatch.kind != "fallback":
            if result.worker:
                self.health.record_success(result.worker)
            self.health.record_success(FARM)
        dispatch.delivered[tkey] = dispatch.delivered.get(tkey, 0) + 1
        if tkey[1] is not None and not state.resolved:
            self._observe(state, dispatch)
            self._resolve(state, dispatch)
        if rkey in self.yielded:
            self.stats.late_duplicates += 1
            return
        self.yielded.add(rkey)
        yield result

    def _observe(self, state: _TaskState, dispatch: _Dispatch) -> None:
        """Report the winning attempt's wall clock to the cost observer.

        Called exactly once per task, at resolution, with the duration
        of the *delivering* dispatch (its own start time, re-armed by
        the backend's "start" event where available) — a hedged or
        retried task is attributed the attempt that actually produced
        the result, never the abandoned one's elapsed time.
        """
        observer = self.sup.cost_observer
        if observer is None:
            return
        started = state.started_at.get(dispatch.id, state.last_started)
        try:
            observer(state.task, max(self.sup.clock() - started, 0.0))
        except Exception:
            pass  # the model is advisory; it must never fail a compile

    def _resolve(self, state: _TaskState, dispatch: Optional[_Dispatch]) -> None:
        state.resolved = True
        state.active.clear()
        if dispatch is not None and dispatch.kind == "hedge":
            self.stats.hedges_won += 1

    def _on_failure(
        self, dispatch: _Dispatch, failure: FunctionMasterFailure
    ) -> Iterator[FunctionTaskResult]:
        yield from self._attempt_failed(
            dispatch, _task_key(failure.task), failure.worker, failure.reason
        )

    def _attempt_failed(
        self,
        dispatch: _Dispatch,
        tkey: tuple,
        worker: Optional[str],
        reason: str,
    ) -> Iterator[FunctionTaskResult]:
        state = self.states.get(tkey)
        if state is None or state.resolved or tkey in dispatch.failed:
            return
        dispatch.failed.add(tkey)
        state.active.pop(dispatch.id, None)
        state.failures.append((worker, reason))
        state.distinct_workers.add(worker or f"?{len(state.failures)}")
        if dispatch.kind != "fallback":
            if self.health.record_failure(worker or FARM, self.sup.clock()):
                self.stats.quarantines += 1
        yield from self._next_move(state)

    def _next_move(self, state: _TaskState) -> Iterator[FunctionTaskResult]:
        if state.resolved or state.isolating:
            return
        if state.active:
            return  # another attempt is still in flight
        if (
            len(state.distinct_workers) >= self.sup.poison_threshold
            or state.attempts >= self.sup.max_attempts
        ):
            yield from self._isolate(state)
        else:
            self.stats.retries += 1
            self._launch([state.task], "retry")

    def _on_done(self, dispatch: _Dispatch) -> Iterator[FunctionTaskResult]:
        self.dispatches.pop(dispatch.id, None)
        for tkey in dispatch.keys:
            state = self.states.get(tkey)
            if state is None or state.resolved:
                continue
            if tkey in dispatch.failed or tkey in dispatch.abandoned:
                continue
            if tkey[1] is None and dispatch.delivered.get(tkey, 0) > 0:
                # section-level task: the stream finished and delivered
                # results for this section, so it is complete
                self._resolve(state, dispatch)
                continue
            if dispatch.id in state.active:
                reason = "dispatch finished without a result"
                if dispatch.error is not None:
                    reason = f"dispatch crashed: {dispatch.error!r}"
                yield from self._attempt_failed(dispatch, tkey, None, reason)

    def _expire(self, now: float) -> Iterator[FunctionTaskResult]:
        suspects: Set[int] = set()
        for tkey, state in self.states.items():
            if state.resolved or state.isolating:
                continue
            expired = [
                dispatch_id
                for dispatch_id, deadline in state.active.items()
                if deadline is not None and deadline <= now
            ]
            if not expired:
                continue
            for dispatch_id in expired:
                state.active.pop(dispatch_id, None)
                dispatch = self.dispatches.get(dispatch_id)
                if dispatch is not None:
                    dispatch.abandoned.add(tkey)
                    suspects.add(dispatch_id)
                self.stats.timeouts += 1
                state.failures.append((None, "deadline expired"))
                if dispatch is None or dispatch.kind != "fallback":
                    if self.health.record_failure(FARM, now):
                        self.stats.quarantines += 1
            yield from self._next_move(state)
        for dispatch_id in suspects:
            self._arm_queued(dispatch_id, now)

    def _arm_queued(self, dispatch_id: int, now: float) -> None:
        """A deadline fired inside an arm-on-start dispatch, so its worker
        thread may be wedged mid-attempt.  Arm deadlines for the tasks
        still queued behind it (never started, so still unarmed) — if the
        thread stays stuck they time out and get retried individually
        instead of waiting forever for a start event."""
        dispatch = self.dispatches.get(dispatch_id)
        if dispatch is None or not dispatch.arm_on_start:
            return
        for tkey in dispatch.keys:
            state = self.states.get(tkey)
            if state is None or state.resolved or tkey in dispatch.started:
                continue
            if state.active.get(dispatch_id, _MISSING) is None:
                seconds = self.sup.timeout_for(state.task)
                if seconds is not None:
                    state.active[dispatch_id] = now + seconds

    # -- hedging ------------------------------------------------------

    def _hedge_threshold_met(self) -> bool:
        if self.sup.hedge_after is None:
            return False
        total = len(self.states)
        if total < 2:
            return False
        resolved = sum(1 for s in self.states.values() if s.resolved)
        return resolved / total >= self.sup.hedge_after

    def _hedge_candidate(self, state: _TaskState, ignore_age: bool = False) -> bool:
        if (
            state.resolved
            or state.isolating
            or state.hedged
            or not state.active
            or state.attempts >= self.sup.max_attempts
        ):
            return False
        if ignore_age:
            return True
        age = self.sup.clock() - state.last_started
        return age >= self.sup.hedge_min_age

    def _maybe_hedge(self) -> None:
        if not self._hedge_threshold_met():
            return
        laggards = [
            state
            for state in self.states.values()
            if self._hedge_candidate(state)
        ]
        if not laggards:
            return
        for state in laggards:
            state.hedged = True
        self.stats.hedges_launched += len(laggards)
        self._launch([state.task for state in laggards], "hedge")

    # -- poison isolation ---------------------------------------------

    def _isolate(self, state: _TaskState) -> Iterator[FunctionTaskResult]:
        state.isolating = True
        self.stats.poisoned_tasks += 1
        task = state.task
        name = f"{task.section_name}.{task.function_name or '*'}"
        attempts = len(state.failures)
        reasons = "; ".join(
            dict.fromkeys(reason for _, reason in state.failures)
        )
        try:
            results = self.sup.isolation_runner(task)
        except BaseException:
            trace = traceback.format_exc().rstrip()
            results = self._stub_results(task)
            for result in results:
                result.report.poisoned = 1
                result.report.failed = 1
                result.diagnostics.insert(
                    0,
                    f"error: {task.section_name}.{result.function_name}: "
                    f"poison task isolated after {attempts} failed farm "
                    f"attempt(s) ({reasons}); in-process compile failed:\n"
                    f"{trace}",
                )
                result.payload_digest = result_payload_digest(result)
        else:
            for result in results:
                result.report.poisoned = 1
                result.diagnostics.insert(
                    0,
                    f"warning: {task.section_name}.{result.function_name}: "
                    f"isolated after {attempts} failed farm attempt(s) "
                    f"({reasons}); compiled in-process",
                )
                result.payload_digest = result_payload_digest(result)
        self._resolve(state, None)
        for result in results:
            rkey = (result.section_name, result.function_name)
            if rkey in self.yielded:
                self.stats.late_duplicates += 1
                continue
            self.yielded.add(rkey)
            yield result
        if not results:  # pragma: no cover - defensive
            raise FunctionMasterFailure(
                task, f"isolation of {name} produced no results"
            )

    def _stub_results(self, task: FunctionTask) -> List[FunctionTaskResult]:
        """Placeholder results for a task whose in-process compile failed:
        empty object code plus a zeroed report per function, so the
        section still recombines and the rest of the module links."""
        names: List[str] = []
        if task.function_name is not None:
            names = [task.function_name]
        else:
            try:
                parsed, _ = phase1_cached(task.source_text, task.filename)
                section = parsed.module.section_named(task.section_name)
                if section is not None:
                    names = [function.name for function in section.functions]
            except Exception:
                names = []
        if not names:  # pragma: no cover - unparseable section-level source
            names = [task.function_name or "<unknown>"]
        results = []
        for name in names:
            results.append(
                FunctionTaskResult(
                    section_name=task.section_name,
                    function_name=name,
                    obj=ObjectFunction(name=name, section_name=task.section_name),
                    report=FunctionReport(
                        section_name=task.section_name,
                        name=name,
                        source_lines=0,
                        ir_instructions=0,
                        loop_weight=0,
                        work_units=0,
                        bundles=0,
                        pipelined_loops=0,
                    ),
                )
            )
        return results
