"""Global constant propagation (iterative dataflow over the CFG).

Local copy propagation only sees one block; this pass carries known
constants across branches, joins, and into loops, using the classic
three-level lattice (unvisited / known constant / varying) with a
worklist.  Combined with the folder and CFG simplification it deletes
whole never-taken branches — one more of the "more time consuming
optimizations" (§6) the parallel compiler makes affordable.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Union

from ..ir.cfg import BasicBlock, FunctionIR
from ..ir.instructions import Instr, Opcode, evaluate_constant
from ..ir.values import Const, IR_INT, VReg

Number = Union[int, float]
#: A state maps registers to definitely-known values; absence = varying.
State = Dict[VReg, Number]

#: Ops whose result is computable when every operand is known.
_EVALUATABLE = {
    Opcode.ADD,
    Opcode.SUB,
    Opcode.MUL,
    Opcode.DIV,
    Opcode.MOD,
    Opcode.NEG,
    Opcode.ABS,
    Opcode.SQRT,
    Opcode.MIN,
    Opcode.MAX,
    Opcode.NOT,
    Opcode.AND,
    Opcode.OR,
    Opcode.CEQ,
    Opcode.CNE,
    Opcode.CLT,
    Opcode.CLE,
    Opcode.CGT,
    Opcode.CGE,
    Opcode.MOV,
    Opcode.LI,
    Opcode.ITOF,
    Opcode.FTOI,
}


def propagate_constants_globally(function: FunctionIR) -> int:
    """Rewrite register uses that are provably constant; returns changes."""
    in_states = _solve(function)
    changes = 0
    for block in function.blocks:
        state = dict(in_states.get(block.name, {}))
        for index, instr in enumerate(block.instructions):
            new_operands = tuple(
                Const(state[v], v.type)
                if isinstance(v, VReg) and v in state
                else v
                for v in instr.operands
            )
            if new_operands != instr.operands:
                block.instructions[index] = instr.with_operands(new_operands)
                instr = block.instructions[index]
                changes += 1
            _transfer(instr, state)
    return changes


def _solve(function: FunctionIR) -> Dict[str, State]:
    """Fixpoint of per-block entry states.

    Entry block starts with nothing known (parameters vary).  A block's
    entry state is the agreement (intersection on equal values) of every
    *visited* predecessor's exit state; unvisited predecessors are
    optimistically ignored until they get an exit state, and the worklist
    re-runs successors whenever an exit state shrinks.
    """
    preds = function.predecessors()
    block_map = function.block_map()
    in_states: Dict[str, State] = {function.entry.name: {}}
    out_states: Dict[str, State] = {}

    worklist: List[str] = [function.entry.name]
    queued = set(worklist)
    guard = 0
    while worklist:
        guard += 1
        if guard > 40 * max(1, len(function.blocks)) * (
            1 + function.instruction_count()
        ):  # pragma: no cover - safety net
            raise RuntimeError("constant propagation failed to converge")
        name = worklist.pop(0)
        queued.discard(name)
        block = block_map[name]
        if name != function.entry.name:
            in_states[name] = _meet(
                [out_states[p] for p in preds[name] if p in out_states]
            )
        state = dict(in_states[name])
        for instr in block.instructions:
            _transfer(instr, state)
        if out_states.get(name) != state:
            out_states[name] = state
            for succ in block.successors():
                if succ not in queued:
                    worklist.append(succ)
                    queued.add(succ)
    return in_states


def _meet(states: List[State]) -> State:
    if not states:
        return {}
    merged = dict(states[0])
    for state in states[1:]:
        for reg in list(merged):
            if reg not in state or state[reg] != merged[reg]:
                del merged[reg]
    return merged


def _transfer(instr: Instr, state: State) -> None:
    """Update ``state`` across one instruction."""
    dest = instr.dest
    if dest is None:
        return
    if instr.op in _EVALUATABLE:
        values = []
        known = True
        for operand in instr.operands:
            if isinstance(operand, Const):
                values.append(operand.value)
            elif isinstance(operand, VReg) and operand in state:
                values.append(state[operand])
            else:
                known = False
                break
        if known:
            result = evaluate_constant(instr.op, values)
            if result is not None:
                state[dest] = (
                    int(result) if dest.type == IR_INT else float(result)
                )
                return
    state.pop(dest, None)
