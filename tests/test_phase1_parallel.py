"""Parallel + incremental phase 1: bit-identity with the sequential
front end, and the span-hash parse cache's invalidation contract.

The headline property mirrors the paper's own correctness requirement
(recombined parallel output must be bit-identical to sequential, §3.2)
at the front end: over 200 generator seeds across size classes, the
boundary scanner's split points coincide with the sequential parser's
function spans, and :func:`phase1_parallel` produces a structurally and
span-identical AST, identical work counts, identical scopes — and, on
error modules, identical rendered diagnostics.
"""

import tempfile

import pytest

from repro.cache import ParseCache
from repro.driver.function_master import clear_phase1_cache
from repro.driver.master import ParallelCompiler
from repro.driver.phases import (
    Phase1Stats,
    phase1_critical_path_work,
    phase1_parallel,
    phase1_parse_and_check,
)
from repro.driver.sequential import SequentialCompiler
from repro.fuzz import config_for_size_class, generate_program
from repro.lang.boundary import scan_boundaries
from repro.lang.diagnostics import CompileError
from repro.lang.unparse import unparse_module
from repro.parallel.local import SerialBackend
from repro.workloads.synthetic import synthetic_program


def _render(error: CompileError) -> str:
    return "\n".join(d.render() for d in error.diagnostics)


def _assert_equivalent(source: str, **kwargs):
    """phase1_parallel(source) must be indistinguishable from
    phase1_parse_and_check(source) in every observable way."""
    seq = phase1_parse_and_check(source)
    stats = Phase1Stats()
    par = phase1_parallel(source, jobs=2, stats=stats, **kwargs)
    # Deep structural + span equality (AST dataclasses compare fields;
    # expression types are excluded from eq but unparse covers shape).
    assert par.module == seq.module
    assert unparse_module(par.module) == unparse_module(seq.module)
    assert par.parse_work == seq.parse_work
    assert par.sema_work == seq.sema_work
    assert par.source_lines == seq.source_lines
    assert set(par.sema.scopes) == set(seq.sema.scopes)
    for key, seq_scope in seq.sema.scopes.items():
        par_scope = par.sema.scopes[key]
        assert par_scope.symbols == seq_scope.symbols, key
    return stats


# ---------------------------------------------------------------------------
# 200-seed matrix
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("block", range(4))
def test_parallel_phase1_matches_sequential_across_seeds(block):
    """200 consecutive seeds (50 per block): boundary windows == parser
    spans, and the parallel front end is bit-identical to sequential."""
    size_class = ("tiny", "small", "medium", "small")[block]
    config = config_for_size_class(size_class)
    for seed in range(block * 50, block * 50 + 50):
        source = generate_program(seed, config).source
        seq = phase1_parse_and_check(source)
        boundaries = scan_boundaries(source)
        assert boundaries is not None, f"{size_class} seed {seed}"
        windows = boundaries.all_windows()
        spans = [
            fn.span
            for _section, fn in seq.module.all_functions()
        ]
        assert len(windows) == len(spans), f"{size_class} seed {seed}"
        for window, span in zip(windows, spans):
            assert window.start == span.start.offset
            assert window.end == span.end.offset
        stats = _assert_equivalent(source)
        assert stats.mode == "parallel", (
            f"{size_class} seed {seed} fell back: {stats.fallback_reason}"
        )


def test_large_and_huge_size_classes():
    for size_class, n in (("large", 3), ("huge", 2)):
        stats = _assert_equivalent(synthetic_program(size_class, n))
        assert stats.mode == "parallel"


# ---------------------------------------------------------------------------
# Error paths: identical diagnostics, via fallback
# ---------------------------------------------------------------------------

ERROR_MODULES = [
    # sema: undeclared variable
    "module m section s (cells 0..1) function f() begin x := 1; end end end",
    # sema: empty section
    "module m section s (cells 0..1) end end",
    # sema: missing return
    "module m section s (cells 0..1) function f(): int begin end end end",
    # sema: recursion
    "module m section s (cells 0..1) function f(): int begin "
    "return f(); end end end",
    # sema: duplicate function
    "module m section s (cells 0..1) "
    "function f(): int begin return 1; end "
    "function f(): int begin return 2; end end end",
    # parse: missing module end
    "module m section s (cells 0..1) function f() begin return; end",
    # parse: trailing garbage (invisible to the word-level scanner)
    "module m section s (cells 0..1) function f() begin return; end end end ;",
    # parse: garbage inside a window
    "module m section s (cells 0..1) function f() begin return @; end end end",
    # lex+parse: bad character in the skeleton
    "module m $ section s (cells 0..1) function f() begin return; end end end",
]


@pytest.mark.parametrize("source", ERROR_MODULES)
def test_error_modules_raise_identical_diagnostics(source):
    with pytest.raises(CompileError) as seq_err:
        phase1_parse_and_check(source)
    with pytest.raises(CompileError) as par_err:
        phase1_parallel(source, jobs=2)
    assert _render(par_err.value) == _render(seq_err.value)


def test_error_module_with_parse_cache_still_canonical():
    source = ERROR_MODULES[0]
    with tempfile.TemporaryDirectory() as tmp:
        cache = ParseCache(tmp)
        with pytest.raises(CompileError) as seq_err:
            phase1_parse_and_check(source)
        for _ in range(2):  # cold, then possibly-cached second attempt
            with pytest.raises(CompileError) as par_err:
                phase1_parallel(source, jobs=2, parse_cache=cache)
            assert _render(par_err.value) == _render(seq_err.value)


# ---------------------------------------------------------------------------
# Parse cache: hit/miss accounting and single-function invalidation
# ---------------------------------------------------------------------------

FUNCTIONS = 6
SOURCE = synthetic_program("small", FUNCTIONS)


def test_parse_cache_cold_then_warm():
    with tempfile.TemporaryDirectory() as tmp:
        cache = ParseCache(tmp)
        cold = Phase1Stats()
        phase1_parallel(SOURCE, jobs=2, parse_cache=cache, stats=cold)
        assert (cold.cache_hits, cold.cache_misses) == (0, FUNCTIONS)
        warm = Phase1Stats()
        par = phase1_parallel(SOURCE, jobs=2, parse_cache=cache, stats=warm)
        assert (warm.cache_hits, warm.cache_misses) == (FUNCTIONS, 0)
        assert par.module == phase1_parse_and_check(SOURCE).module


def test_body_edit_reparses_exactly_one_function():
    """The acceptance criterion: a 1-function edit on a warm cache
    misses once and hits FUNCTIONS-1 times — and the edit *adds lines*,
    so every later function's cached spans go through the rebase."""
    with tempfile.TemporaryDirectory() as tmp:
        cache = ParseCache(tmp)
        phase1_parallel(SOURCE, jobs=2, parse_cache=cache)
        edited = SOURCE.replace(
            "acc := 0.0;",
            "acc := 0.0;\n    acc := acc + 1.0;\n    acc := acc + 2.0;",
            1,
        )
        assert edited != SOURCE
        stats = Phase1Stats()
        par = phase1_parallel(edited, jobs=2, parse_cache=cache, stats=stats)
        assert (stats.cache_hits, stats.cache_misses) == (FUNCTIONS - 1, 1)
        # Rebased entries must be bit-identical to a fresh parse: spans,
        # structure, everything.
        seq = phase1_parse_and_check(edited)
        assert par.module == seq.module
        assert unparse_module(par.module) == unparse_module(seq.module)


def test_signature_edit_invalidates_whole_section():
    """Changing one function's signature changes every sibling's key
    (call-site checking reads the shared signature table)."""
    with tempfile.TemporaryDirectory() as tmp:
        cache = ParseCache(tmp)
        phase1_parallel(SOURCE, jobs=2, parse_cache=cache)
        edited = SOURCE.replace(
            "function f1(x: float, y: float) : float",
            "function f1(x: float, y: float, z: float) : float",
        )
        assert edited != SOURCE
        stats = Phase1Stats()
        phase1_parallel(edited, jobs=2, parse_cache=cache, stats=stats)
        assert stats.cache_hits == 0
        assert stats.cache_misses == FUNCTIONS


def test_comment_only_edit_hits_everything():
    """Edits in the skeleton gaps (here: the module header line) leave
    every function's window text untouched — all hits, spans rebased."""
    with tempfile.TemporaryDirectory() as tmp:
        cache = ParseCache(tmp)
        phase1_parallel(SOURCE, jobs=2, parse_cache=cache)
        edited = SOURCE.replace(
            "module ", "-- a new comment line\nmodule ", 1
        )
        stats = Phase1Stats()
        par = phase1_parallel(edited, jobs=2, parse_cache=cache, stats=stats)
        assert (stats.cache_hits, stats.cache_misses) == (FUNCTIONS, 0)
        assert par.module == phase1_parse_and_check(edited).module


# ---------------------------------------------------------------------------
# Deterministic scaling model
# ---------------------------------------------------------------------------


def test_critical_path_work_scales():
    stats = Phase1Stats()
    phase1_parallel(synthetic_program("huge", 8), jobs=1, stats=stats)
    assert stats.mode == "parallel"
    assert len(stats.window_work) == 8
    one = phase1_critical_path_work(stats, 1)
    four = phase1_critical_path_work(stats, 4)
    assert one / four >= 2.0
    # Monotone: more jobs never lengthen the critical path.
    assert phase1_critical_path_work(stats, 2) <= one
    assert four <= phase1_critical_path_work(stats, 2)


# ---------------------------------------------------------------------------
# End-to-end through the compiler drivers
# ---------------------------------------------------------------------------


def test_compiler_with_parallel_front_end_is_bit_identical():
    clear_phase1_cache()
    seq = SequentialCompiler().compile(SOURCE)
    with tempfile.TemporaryDirectory() as tmp:
        cache = ParseCache(tmp)
        compiler = ParallelCompiler(
            backend=SerialBackend(), phase1_jobs=2, parse_cache=cache
        )
        clear_phase1_cache()
        cold = compiler.compile(SOURCE)
        assert cold.digest == seq.digest
        assert cold.profile.phase1_mode == "parallel"
        assert cold.profile.parse_cache_misses == FUNCTIONS
        assert cold.profile.parse_cache_hits == 0
        clear_phase1_cache()
        warm = compiler.compile(SOURCE)
        assert warm.digest == seq.digest
        assert warm.profile.parse_cache_hits == FUNCTIONS
        assert warm.profile.parse_cache_misses == 0
        assert warm.profile.phase1_parse_ms >= 0.0
        assert "phase1_mode" in warm.profile.to_dict()


def test_compile_cli_json_reports_parse_cache(tmp_path, capsys):
    import json

    from repro.cli import main

    source_path = tmp_path / "m.w"
    source_path.write_text(SOURCE)
    clear_phase1_cache()
    code = main([
        "compile", str(source_path),
        "--phase1-jobs", "2", "--jobs", "1",
        "--cache-dir", str(tmp_path / "cache"),
        "--json",
    ])
    assert code == 0
    document = json.loads(capsys.readouterr().out)
    assert document["parse_cache"]["misses"] == FUNCTIONS
    assert document["profile"]["phase1_mode"] == "parallel"
    assert document["profile"]["parse_cache_misses"] == FUNCTIONS
