"""Execution backends for the parallel compiler.

A backend answers one question: given N independent function-master
tasks, run them and return their results.  The paper's host was an
Ethernet network of diskless SUN workstations reached through UNIX
heavyweight processes; ours are local OS processes
(:class:`repro.parallel.local.ProcessPoolBackend`), an in-process serial
executor for tests, or the discrete-event cluster simulator for timing
studies (:mod:`repro.cluster`).
"""

from __future__ import annotations

from typing import List, Protocol

from ..driver.function_master import FunctionTask, FunctionTaskResult


class ExecutionBackend(Protocol):
    """Runs function-master tasks; order of results is unspecified."""

    def run_tasks(self, tasks: List[FunctionTask]) -> List[FunctionTaskResult]:
        ...  # pragma: no cover - protocol

    @property
    def worker_count(self) -> int:
        """Workers the backend was configured with."""
        ...  # pragma: no cover - protocol

    @property
    def effective_worker_count(self) -> int:
        """Workers that could actually run concurrently in the most
        recent ``run_tasks`` call (a pool of 8 given 3 tasks used 3) —
        the denominator speedup/efficiency metrics must divide by."""
        ...  # pragma: no cover - protocol
