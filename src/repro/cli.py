"""``warpcc`` — command-line driver for the Warp parallel compiler.

Subcommands:

- ``warpcc compile FILE``: compile a module, print the compilation
  report; ``--parallel`` uses the master/section/function-master
  hierarchy with one OS process per function master.
- ``warpcc run FILE --inputs 1,2,3``: compile and execute the program on
  the simulated Warp array.
- ``warpcc bench SIZE N``: the paper's S_n experiment for one point —
  compile, replay both compilers on the simulated workstation network,
  print speedup and overhead decomposition.
- ``warpcc search FILE``: optimization-variant search — compile the
  module under every config in the variant space, score each function's
  variants by simulated cycle count in warpsim, ship the verified
  per-function winners (also reachable as ``warpcc compile --search``).
- ``warpcc serve``: run the multi-tenant compile service (one shared
  warm pool + artifact cache, fair-share scheduling across tenants).
- ``warpcc submit FILE`` / ``warpcc status``: client side of the
  service — submit modules, stream progress, inspect the shared pool.
- ``warpcc watch FILE``: stream edits to a ``serve --predict`` service
  so the changed functions are speculatively precompiled before the
  next submit (watch mode; results land in the ordinary caches).
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from .asmlink.download import module_digest
from .cluster.cluster import ClusterSimulation
from .driver.master import ParallelCompiler
from .driver.sequential import SequentialCompiler
from .lang.diagnostics import CompileError
from .machine.warp_array import WarpArrayModel
from .metrics.overhead import compute_overhead
from .parallel.local import ProcessPoolBackend, SerialBackend
from .parallel.schedule import one_function_per_processor
from .warpsim.array_runner import run_module
from .workloads.sizes import SIZE_CLASSES
from .workloads.synthetic import synthetic_program


def _add_search_tuning_arguments(parser) -> None:
    """The variant-search knobs, shared by ``warpcc search`` and
    ``warpcc compile --search``."""
    parser.add_argument(
        "--space", default=None, metavar="KEY,KEY,...",
        help="variant space as comma-separated config keys, e.g. "
        "'o2u0i0,o2u64i0,o2u0i1' (default: the stock lattice; the "
        "reference config o2u0i0 is always included first)",
    )
    parser.add_argument(
        "--inputs", action="append", default=None, metavar="V,V,...",
        help="one recorded scoring input set (comma-separated floats); "
        "repeat for several sets.  Default: seeded synthetic inputs",
    )
    parser.add_argument(
        "--input-seed", type=int, default=0,
        help="seed for the synthetic scoring inputs (default 0)",
    )
    parser.add_argument(
        "--input-sets", type=int, default=2, dest="input_set_count",
        help="how many synthetic input sets to score on (default 2)",
    )
    parser.add_argument(
        "--input-width", type=int, default=4,
        help="values per synthetic input set (default 4)",
    )
    parser.add_argument(
        "--max-cycles", type=int, default=2_000_000,
        help="per-run simulation ceiling; a variant that exceeds it is "
        "disqualified (default 2000000)",
    )


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="warpcc",
        description="Parallel compiler for the Warp systolic array "
        "(PLDI 1989 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    compile_cmd = sub.add_parser("compile", help="compile a module")
    compile_cmd.add_argument("file", help="source file (or '-' for stdin)")
    compile_cmd.add_argument(
        "-O", "--opt-level", type=int, default=2, choices=(0, 1, 2)
    )
    compile_cmd.add_argument(
        "--parallel", action="store_true",
        help="use the parallel compiler (master hierarchy)",
    )
    compile_cmd.add_argument(
        "--jobs", type=int, default=None,
        help="worker processes for --parallel (default: cores-1)",
    )
    compile_cmd.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="artifact-cache directory for --parallel "
        "(default: $WARPCC_CACHE_DIR or ~/.cache/warpcc)",
    )
    compile_cmd.add_argument(
        "--no-cache", action="store_true",
        help="disable the persistent function-level artifact cache",
    )
    compile_cmd.add_argument(
        "--cache-url", default=None, metavar="HOST:PORT",
        help="network artifact-cache tier (see 'warpcc cache-server'); "
        "read-through/write-behind in front of the local cache, and "
        "any cache-tier failure degrades to local-only "
        "(default: $WARPCC_CACHE_URL)",
    )
    compile_cmd.add_argument(
        "--phase1-jobs", type=int, default=None, metavar="N",
        help="parse and check N function bodies concurrently in phase 1 "
        "(boundary-scan front end; bit-identical to sequential); "
        "implies --parallel",
    )
    compile_cmd.add_argument(
        "--no-parse-cache", action="store_true",
        help="with --phase1-jobs: disable the persistent per-function "
        "parse cache (span-hash keyed incremental front end)",
    )
    compile_cmd.add_argument(
        "--phase4-jobs", type=int, default=None, metavar="N",
        help="link N sections concurrently in phase 4 over the function "
        "masters' pre-assembled payloads (bit-identical to sequential); "
        "implies --parallel",
    )
    compile_cmd.add_argument(
        "--no-link-cache", action="store_true",
        help="with --phase4-jobs: disable the persistent link/module "
        "cache (content-keyed per-section CellPrograms plus whole "
        "DownloadModules)",
    )
    compile_cmd.add_argument(
        "--supervised", action="store_true",
        help="wrap the backend in the supervision layer (deadlines, "
        "straggler hedging, worker quarantine, poison-task isolation); "
        "implies --parallel",
    )
    compile_cmd.add_argument(
        "--task-timeout", type=float, default=None, metavar="SECONDS",
        help="fixed per-attempt deadline for --supervised (default: "
        "derived from each task's cost estimate; 0 disables deadlines)",
    )
    compile_cmd.add_argument(
        "--hedge-after", type=float, default=0.75, metavar="FRACTION",
        help="launch duplicate attempts for stragglers once this "
        "fraction of the wave has finished (0 disables hedging)",
    )
    compile_cmd.add_argument(
        "--max-attempts", type=int, default=3, metavar="N",
        help="farm attempts per task before in-process isolation",
    )
    compile_cmd.add_argument(
        "--poison-threshold", type=int, default=3, metavar="N",
        help="failures on this many distinct workers flag a task as "
        "poison and isolate it in-process",
    )
    compile_cmd.add_argument(
        "--chaos", type=int, default=None, metavar="SEED",
        help="inject deterministic faults (crashes, hangs, corrupt "
        "payloads) seeded by SEED; implies --supervised and --parallel",
    )
    compile_cmd.add_argument(
        "--chaos-poison", default=None, metavar="SECTION.FUNCTION",
        help="with --chaos: make this task crash on every worker",
    )
    compile_cmd.add_argument(
        "--cells", type=int, default=10, help="cells in the target array"
    )
    compile_cmd.add_argument(
        "--emit",
        choices=("report", "digest", "driver", "binary"),
        default="report",
    )
    compile_cmd.add_argument(
        "--json", action="store_true",
        help="print the compilation report as one JSON document "
        "(job digest, per-function metrics, cache/supervisor counters) "
        "instead of the text report",
    )
    compile_cmd.add_argument(
        "-o", "--output", default=None,
        help="output path for --emit binary (default: <module>.warp)",
    )
    compile_cmd.add_argument(
        "--search", action="store_true",
        help="run the optimization-variant search instead of a single "
        "compile (see 'warpcc search'); honors --cells, --jobs, "
        "--cache-dir/--no-cache, --json, --emit report|digest, and "
        "the search tuning flags below",
    )
    _add_search_tuning_arguments(compile_cmd)

    search_cmd = sub.add_parser(
        "search",
        help="variant search: compile k configs per function, let "
        "warpsim pick the fastest semantically-identical winner",
    )
    search_cmd.add_argument("file", help="source file (or '-' for stdin)")
    search_cmd.add_argument("--cells", type=int, default=10)
    search_cmd.add_argument(
        "--jobs", type=int, default=None,
        help="worker processes for the per-config compiles "
        "(default: in-process serial)",
    )
    search_cmd.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="cache directory for the artifact and variant-score tiers "
        "(default: $WARPCC_CACHE_DIR or ~/.cache/warpcc)",
    )
    search_cmd.add_argument(
        "--no-cache", action="store_true",
        help="disable both the artifact cache and the variant-score "
        "store (every variant is compiled and re-simulated)",
    )
    _add_search_tuning_arguments(search_cmd)
    search_cmd.add_argument(
        "--emit", choices=("report", "digest"), default="report"
    )
    search_cmd.add_argument(
        "--json", action="store_true",
        help="print the search report as one JSON document (winners, "
        "cycle counts, verification status, per-function metrics)",
    )

    run_cmd = sub.add_parser("run", help="compile and simulate a module")
    run_cmd.add_argument("file")
    run_cmd.add_argument(
        "--inputs", default="",
        help="comma-separated input stream, e.g. 1.0,2.5,3",
    )
    run_cmd.add_argument(
        "-O", "--opt-level", type=int, default=2, choices=(0, 1, 2)
    )
    run_cmd.add_argument("--cells", type=int, default=10)
    run_cmd.add_argument(
        "--max-cycles", type=int, default=5_000_000
    )

    disasm_cmd = sub.add_parser(
        "disasm", help="disassemble a binary download module"
    )
    disasm_cmd.add_argument("file", help="a .warp file")

    bench_cmd = sub.add_parser(
        "bench", help="one point of the paper's S_n experiment"
    )
    bench_cmd.add_argument(
        "size", choices=sorted(SIZE_CLASSES), help="function size class"
    )
    bench_cmd.add_argument("functions", type=int, help="number of functions")
    bench_cmd.add_argument(
        "--processors", type=int, default=None,
        help="workstations (default: one per function)",
    )
    bench_cmd.add_argument(
        "--backend", choices=("sim", "serial", "pool", "warm"),
        default="sim",
        help="'sim' replays the 1988 cluster model; 'serial', 'pool' "
        "(cold process pool) and 'warm' (persistent warm-worker farm) "
        "measure real wall-clock on this machine",
    )
    bench_cmd.add_argument(
        "--repeat", type=int, default=2,
        help="compilations per live backend (default 2; the second run "
        "shows the warm farm's amortization)",
    )
    bench_cmd.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="artifact-cache directory for the live backends (default: "
        "a fresh temporary directory, so round 1 is cold and round 2+ "
        "are warm-cache by construction)",
    )
    bench_cmd.add_argument(
        "--no-cache", action="store_true",
        help="disable the persistent function-level artifact cache",
    )

    fuzz_cmd = sub.add_parser(
        "fuzz",
        help="differential fuzzing: generated programs through every "
        "pipeline variant, mismatches minimized into the corpus",
    )
    fuzz_cmd.add_argument(
        "--seed", type=int, default=0,
        help="base RNG seed; iteration i uses seed+i (default 0)",
    )
    fuzz_cmd.add_argument(
        "--iterations", type=int, default=50,
        help="programs to generate and check (default 50)",
    )
    fuzz_cmd.add_argument(
        "--size-class", default="small", choices=sorted(SIZE_CLASSES),
        help="generated-program size preset (default small)",
    )
    fuzz_cmd.add_argument(
        "--minimize", action="store_true",
        help="delta-debug the first mismatch and write the reduced "
        "reproducer into the corpus",
    )
    fuzz_cmd.add_argument(
        "--time-budget", type=float, default=None, metavar="SECONDS",
        help="stop cleanly after this much wall-clock (for CI boxes)",
    )
    fuzz_cmd.add_argument(
        "--pipelines", default=None, metavar="A,B,...",
        help="comma-separated pipeline subset, or 'all' (default: every "
        "in-process variant; 'all' adds the warm multiprocess pool)",
    )
    fuzz_cmd.add_argument(
        "--corpus-dir", default="tests/corpus", metavar="DIR",
        help="where --minimize writes reproducers (default tests/corpus)",
    )
    fuzz_cmd.add_argument("--cells", type=int, default=10)
    fuzz_cmd.add_argument(
        "-O", "--opt-level", type=int, default=2, choices=(0, 1, 2)
    )
    fuzz_cmd.add_argument(
        "--no-semantics", action="store_true",
        help="skip the execute-vs-reference-interpreter leg",
    )
    fuzz_cmd.add_argument(
        "--keep-going", action="store_true",
        help="collect every mismatch instead of stopping at the first",
    )
    fuzz_cmd.add_argument(
        "--inject-miscompile", default=None, metavar="PIPELINE:FUNCTION",
        help="TESTING ONLY: perturb the named pipeline's digest when the "
        "module defines FUNCTION, to exercise catch/minimize/corpus",
    )

    serve_cmd = sub.add_parser(
        "serve",
        help="run the multi-tenant compile service over one shared "
        "warm pool (JSON-lines protocol; see 'warpcc submit')",
    )
    serve_cmd.add_argument(
        "--host", default="127.0.0.1", help="bind address (default local)"
    )
    serve_cmd.add_argument(
        "--port", type=int, default=0,
        help="TCP port (default 0: pick a free port and print it)",
    )
    serve_cmd.add_argument(
        "--workers", type=int, default=None,
        help="warm-pool worker processes (default: cores-1)",
    )
    serve_cmd.add_argument(
        "--max-queued", type=int, default=32,
        help="admission bound: queued jobs beyond this are rejected "
        "with explicit backpressure (default 32)",
    )
    serve_cmd.add_argument(
        "--max-running", type=int, default=4,
        help="concurrent compile jobs (default 4)",
    )
    serve_cmd.add_argument(
        "--per-tenant", type=int, default=8, metavar="N",
        help="per-tenant in-flight job cap (default 8)",
    )
    serve_cmd.add_argument(
        "--tenant-weight", action="append", default=[],
        metavar="TENANT=WEIGHT",
        help="fair-share weight for a tenant (repeatable; default 1.0)",
    )
    serve_cmd.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="shared artifact-cache directory "
        "(default: $WARPCC_CACHE_DIR or ~/.cache/warpcc)",
    )
    serve_cmd.add_argument(
        "--no-cache", action="store_true",
        help="disable the shared artifact cache",
    )
    serve_cmd.add_argument(
        "--supervised", action="store_true",
        help="wrap the shared pool in the supervision layer "
        "(deadlines, hedging, quarantine, poison isolation)",
    )
    serve_cmd.add_argument(
        "--task-timeout", type=float, default=None, metavar="SECONDS",
        help="fixed per-attempt deadline for --supervised",
    )
    serve_cmd.add_argument(
        "--hedge-after", type=float, default=0.75, metavar="FRACTION",
        help="straggler hedging threshold for --supervised (0 disables)",
    )
    serve_cmd.add_argument(
        "--fabric-port", type=int, default=None, metavar="PORT",
        help="also run a fabric hub on this port (0: pick a free port) "
        "and schedule compile tasks onto registered 'warpcc worker' "
        "nodes; the local pool remains the fallback when zero nodes "
        "hold live leases.  Export WARPCC_FABRIC_SECRET (same value on "
        "every hub/worker/cache process) to require authenticated "
        "registration and HMAC-tagged payloads; without it the port is "
        "unauthenticated — trusted networks only",
    )
    serve_cmd.add_argument(
        "--cache-url", default=None, metavar="HOST:PORT",
        help="network artifact-cache tier shared by every node "
        "(default: $WARPCC_CACHE_URL)",
    )
    serve_cmd.add_argument(
        "--predict", action="store_true",
        help="learn per-function compile costs from observed wall-clock "
        "(persistent observation store under --cache-dir) and use them "
        "for fair-share ordering, LPT batch packing, and supervised "
        "deadlines; scheduling only — results are unchanged",
    )
    serve_cmd.add_argument(
        "--no-speculation", action="store_true",
        help="with --predict: keep the learned cost model but refuse "
        "'warpcc watch' speculative precompiles",
    )
    serve_cmd.add_argument(
        "--speculation-inflight", type=int, default=2, metavar="N",
        help="concurrent speculative watch jobs (default 2)",
    )
    serve_cmd.add_argument(
        "--speculation-headroom", type=int, default=2, metavar="N",
        help="refuse speculation unless the admission queue has at "
        "least this much free depth (default 2)",
    )

    worker_cmd = sub.add_parser(
        "worker",
        help="run a worker-node agent: register this machine's pool "
        "with a fabric hub and compile the tasks it leases us",
    )
    worker_cmd.add_argument(
        "--connect", required=True, metavar="HOST:PORT",
        help="fabric hub address (what 'warpcc serve --fabric-port' "
        "printed); export WARPCC_FABRIC_SECRET to match a hub that "
        "requires authentication",
    )
    worker_cmd.add_argument(
        "--workers", type=int, default=None,
        help="local warm-pool worker processes (default: cores-1)",
    )
    worker_cmd.add_argument(
        "--node-id", default=None,
        help="stable node identity (default: hostname-pid)",
    )
    worker_cmd.add_argument(
        "--serial", action="store_true",
        help="compile in-process instead of a warm pool (tests, "
        "single-core machines)",
    )
    worker_cmd.add_argument(
        "--chaos", type=int, default=None, metavar="SEED",
        help="inject deterministic transport faults seeded by SEED "
        "(fault suite; see --chaos-fault)",
    )
    worker_cmd.add_argument(
        "--chaos-fault", default="mixed",
        choices=("node-kill", "heartbeat-drop", "truncate", "delay-dup",
                 "mixed"),
        help="which transport fault family --chaos injects",
    )

    cache_server_cmd = sub.add_parser(
        "cache-server",
        help="run the content-addressed network artifact-cache tier "
        "(clients: --cache-url HOST:PORT)",
    )
    cache_server_cmd.add_argument(
        "--host", default="127.0.0.1", help="bind address (default local)"
    )
    cache_server_cmd.add_argument(
        "--port", type=int, default=0,
        help="TCP port (default 0: pick a free port and print it)",
    )
    cache_server_cmd.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="blob-store directory (default: $WARPCC_CACHE_DIR or "
        "~/.cache/warpcc)",
    )
    cache_server_cmd.add_argument(
        "--max-bytes", type=int, default=None, metavar="N",
        help="LRU size bound for the blob store",
    )

    submit_cmd = sub.add_parser(
        "submit", help="submit a module to a running compile service"
    )
    submit_cmd.add_argument("file", help="source file (or '-' for stdin)")
    submit_cmd.add_argument(
        "--connect", default=None, metavar="HOST:PORT",
        help="service address (default: $WARPCC_SERVICE)",
    )
    submit_cmd.add_argument(
        "--tenant", default="default", help="tenant identity for fair share"
    )
    submit_cmd.add_argument(
        "--priority", default="normal",
        choices=("interactive", "normal", "batch"),
    )
    submit_cmd.add_argument(
        "-O", "--opt-level", type=int, default=2, choices=(0, 1, 2)
    )
    submit_cmd.add_argument("--cells", type=int, default=10)
    submit_cmd.add_argument(
        "--no-wait", action="store_true",
        help="print the job id and return without waiting",
    )
    submit_cmd.add_argument(
        "--quiet", action="store_true",
        help="suppress the streamed per-function progress events",
    )
    submit_cmd.add_argument(
        "--json", action="store_true",
        help="print the final job document as JSON",
    )

    watch_cmd = sub.add_parser(
        "watch",
        help="stream a file's edits to the service so it precompiles "
        "the changed functions before you submit (speculative, "
        "batch-priority; requires 'warpcc serve --predict')",
    )
    watch_cmd.add_argument("file", help="source file to watch")
    watch_cmd.add_argument(
        "--connect", default=None, metavar="HOST:PORT",
        help="service address (default: $WARPCC_SERVICE)",
    )
    watch_cmd.add_argument(
        "--watch-key", default=None, metavar="NAME",
        help="watch identity on the server; edits under one key "
        "supersede each other (default: the file path)",
    )
    watch_cmd.add_argument(
        "--interval", type=float, default=0.5, metavar="SECONDS",
        help="poll interval for file changes (default 0.5)",
    )
    watch_cmd.add_argument(
        "--once", action="store_true",
        help="send the file's current contents once and exit "
        "(scripts, CI smoke)",
    )
    watch_cmd.add_argument(
        "-O", "--opt-level", type=int, default=2, choices=(0, 1, 2)
    )
    watch_cmd.add_argument("--cells", type=int, default=10)
    watch_cmd.add_argument(
        "--json", action="store_true",
        help="print each update's outcome document as JSON",
    )

    status_cmd = sub.add_parser(
        "status", help="inspect a running compile service"
    )
    status_cmd.add_argument(
        "--connect", default=None, metavar="HOST:PORT",
        help="service address (default: $WARPCC_SERVICE)",
    )
    status_cmd.add_argument(
        "--job", default=None, help="show one job instead of the overview"
    )
    status_cmd.add_argument(
        "--gantt", action="store_true",
        help="render shared-pool occupancy (slots x time, one glyph "
        "per job)",
    )
    status_cmd.add_argument(
        "--json", action="store_true", help="print the raw JSON reply"
    )
    return parser


def _read_source(path: str) -> str:
    if path == "-":
        return sys.stdin.read()
    with open(path, "r", encoding="utf-8") as handle:
        return handle.read()


def _build_cache(args):
    """The artifact cache selected by --cache-dir / --no-cache, tiered
    behind a network cache when --cache-url / $WARPCC_CACHE_URL names
    one."""
    if args.no_cache:
        return None
    from .cache import ArtifactCache

    cache = ArtifactCache(args.cache_dir)
    import os

    cache_url = getattr(args, "cache_url", None) or os.environ.get(
        "WARPCC_CACHE_URL"
    )
    if cache_url:
        from .fabric import NetworkCacheClient, TieredCache

        cache = TieredCache(cache, NetworkCacheClient(cache_url))
    return cache


def _close_cache(cache) -> None:
    """Flush and close a tiered cache (plain stores have no close)."""
    closer = getattr(cache, "close", None)
    if closer is not None:
        closer()


def _cache_stats_line(cache) -> str:
    stats = cache.stats
    line = (
        f"artifact cache: {stats.hits} hit(s), {stats.misses} miss(es), "
        f"{cache.size_bytes()} bytes on disk"
    )
    remote = getattr(cache, "remote", None)
    if remote is not None:
        state = "disabled" if remote.disabled else "live"
        line += (
            f"; network tier ({state}): {remote.remote_hits} hit(s), "
            f"{remote.remote_misses} miss(es), "
            f"{remote.remote_errors} error(s)"
        )
    return line


def _build_parse_cache(args):
    """The parse cache selected by --phase1-jobs / --no-parse-cache."""
    if args.phase1_jobs is None or args.no_parse_cache:
        return None
    from .cache import ParseCache

    return ParseCache(args.cache_dir)


def _parse_cache_stats_line(parse_cache) -> str:
    stats = parse_cache.stats
    return (
        f"parse cache: {stats.hits} hit(s), {stats.misses} miss(es), "
        f"{parse_cache.size_bytes()} bytes on disk"
    )


def _build_link_cache(args):
    """The link cache selected by --phase4-jobs / --no-link-cache.

    ``WARPCC_LINK_CACHE_DIR`` overrides the tier's directory when no
    --cache-dir is given, so nested compiles (the service's workers,
    subprocess smoke tests) share one link tier.
    """
    if args.phase4_jobs is None or args.no_link_cache:
        return None
    import os

    from .cache import LinkCache

    return LinkCache(
        args.cache_dir or os.environ.get("WARPCC_LINK_CACHE_DIR") or None
    )


def _link_cache_stats_line(link_cache) -> str:
    stats = link_cache.stats
    return (
        f"link cache: {stats.hits} hit(s), {stats.misses} miss(es), "
        f"{link_cache.size_bytes()} bytes on disk"
    )


def _cmd_compile(args) -> int:
    if getattr(args, "search", False):
        # `warpcc compile --search` is the search subcommand with the
        # compile parser's shared flags; both parsers carry the search
        # tuning knobs via _add_search_tuning_arguments.
        return _cmd_search(args)
    source = _read_source(args.file)
    array = WarpArrayModel(cell_count=args.cells)
    if args.supervised or args.chaos is not None:
        args.parallel = True  # supervision wraps the parallel backend
    if args.phase1_jobs is not None:
        args.parallel = True  # the parallel front end rides the hierarchy
    if args.phase4_jobs is not None:
        args.parallel = True  # the parallel back end rides the hierarchy
    cache = _build_cache(args) if args.parallel else None
    parse_cache = _build_parse_cache(args) if args.parallel else None
    link_cache = _build_link_cache(args) if args.parallel else None
    try:
        if args.parallel:
            if parse_cache is not None:
                # Pool workers read this to run the incremental front
                # end on their own phase-1 misses.
                import os

                os.environ["WARPCC_PARSE_CACHE_DIR"] = str(
                    parse_cache.cache_dir
                )
            if link_cache is not None:
                # Propagated so nested compiles (service workers, smoke
                # subprocesses) share the same link tier.
                import os

                os.environ["WARPCC_LINK_CACHE_DIR"] = str(
                    link_cache.cache_dir
                )
            backend = (
                ProcessPoolBackend(args.jobs)
                if args.jobs is None or args.jobs > 1
                else SerialBackend()
            )
            if args.chaos is not None:
                from .parallel.fault_tolerance import ChaosBackend

                poison = ()
                if args.chaos_poison:
                    section, _, function = args.chaos_poison.partition(".")
                    poison = ((section, function or None),)
                # Chaos mode simulates a flaky farm around an in-process
                # executor: deterministic under the seed, demo-friendly.
                backend = ChaosBackend(
                    SerialBackend(),
                    workers=4,
                    seed=args.chaos,
                    crash_rate=0.2,
                    hang_rate=0.2,
                    hang_delay=0.2,
                    corrupt_rate=0.1,
                    poison=poison,
                )
            if args.supervised or args.chaos is not None:
                from .parallel.supervisor import SupervisedBackend

                backend = SupervisedBackend(
                    backend,
                    task_timeout=args.task_timeout,
                    hedge_after=(
                        args.hedge_after if args.hedge_after > 0 else None
                    ),
                    max_attempts=args.max_attempts,
                    poison_threshold=args.poison_threshold,
                )
            with ParallelCompiler(
                backend=backend, array=array, opt_level=args.opt_level,
                cache=cache, owns_backend=True,
                phase1_jobs=args.phase1_jobs, parse_cache=parse_cache,
                phase4_jobs=args.phase4_jobs, link_cache=link_cache,
            ) as compiler:
                result = compiler.compile(source, filename=args.file)
        else:
            result = SequentialCompiler(
                array=array, opt_level=args.opt_level
            ).compile(source, filename=args.file)
    except CompileError as error:
        if args.json:
            import json

            print(json.dumps({
                "ok": False,
                "diagnostics": [
                    diagnostic.render() for diagnostic in error.diagnostics
                ],
            }, indent=2))
        else:
            for diagnostic in error.diagnostics:
                print(diagnostic.render(), file=sys.stderr)
        _close_cache(cache)
        return 1

    # Compilation is done; flush any write-behind pushes to the network
    # cache tier before reporting.
    _close_cache(cache)

    if args.json:
        import json

        document = result.to_dict()
        document["ok"] = not result.profile.failed_functions()
        if cache is not None:
            stats = cache.stats
            document["artifact_cache"] = {
                "hits": stats.hits,
                "misses": stats.misses,
                "bytes_on_disk": cache.size_bytes(),
            }
        if parse_cache is not None:
            stats = parse_cache.stats
            document["parse_cache"] = {
                "hits": stats.hits,
                "misses": stats.misses,
                "bytes_on_disk": parse_cache.size_bytes(),
            }
        if link_cache is not None:
            stats = link_cache.stats
            document["link_cache"] = {
                "hits": stats.hits,
                "misses": stats.misses,
                "bytes_on_disk": link_cache.size_bytes(),
            }
        print(json.dumps(document, indent=2, sort_keys=True))
        return 1 if result.profile.failed_functions() else 0

    if result.diagnostics_text:
        print(result.diagnostics_text, file=sys.stderr)
    if args.emit == "digest":
        print(result.digest)
    elif args.emit == "binary":
        from .asmlink.encode import write_module

        path = args.output or f"{result.module_name}.warp"
        size = write_module(result.download, path)
        print(f"wrote {path}: {size} bytes, "
              f"{result.download.cells_used} cell(s)")
    elif args.emit == "driver":
        from .asmlink.iodriver import build_io_driver

        print(build_io_driver(result.download.cell_programs).describe())
    else:
        for line in result.report_lines():
            print(line)
        print(f"download module: {result.download.cells_used} cell(s), "
              f"{result.profile.download_words} words")
        if cache is not None:
            print(_cache_stats_line(cache))
        if parse_cache is not None:
            print(_parse_cache_stats_line(parse_cache))
        if link_cache is not None:
            print(_link_cache_stats_line(link_cache))
    if result.profile.failed_functions():
        # Poison functions that could not even be compiled in-process:
        # the module is partial, signal it without hiding the rest.
        return 1
    return 0


def _variant_store_stats_line(variant_store) -> str:
    stats = variant_store.stats
    return (
        f"variant store: {stats.hits} hit(s), {stats.misses} miss(es), "
        f"{variant_store.size_bytes()} bytes on disk"
    )


def _cmd_search(args) -> int:
    import json

    from .search import VariantSpace, default_space, search_module
    from .warpsim.scoring import seeded_input_sets

    source = _read_source(args.file)
    array = WarpArrayModel(cell_count=args.cells)
    try:
        space = (
            VariantSpace.parse(args.space)
            if args.space
            else default_space()
        )
    except ValueError as error:
        print(f"warpcc: {error}", file=sys.stderr)
        return 2
    if args.inputs:
        input_sets = [_parse_inputs(text) for text in args.inputs]
    else:
        input_sets = seeded_input_sets(
            args.input_seed, width=args.input_width,
            sets=args.input_set_count,
        )

    cache = None
    variant_store = None
    if not args.no_cache:
        from .cache import ArtifactCache, VariantStore

        cache = ArtifactCache(args.cache_dir)
        variant_store = VariantStore(args.cache_dir)

    backend = (
        ProcessPoolBackend(args.jobs)
        if args.jobs is not None and args.jobs > 1
        else SerialBackend()
    )
    try:
        outcome = search_module(
            source,
            filename=args.file,
            space=space,
            input_sets=input_sets,
            array=array,
            backend=backend,
            cache=cache,
            variant_store=variant_store,
            max_cycles=args.max_cycles,
        )
    except CompileError as error:
        if args.json:
            print(json.dumps({
                "ok": False,
                "diagnostics": [
                    diagnostic.render() for diagnostic in error.diagnostics
                ],
            }, indent=2))
        else:
            for diagnostic in error.diagnostics:
                print(diagnostic.render(), file=sys.stderr)
        return 1
    finally:
        shutdown = getattr(backend, "shutdown", None)
        if shutdown is not None:
            shutdown()

    result = outcome.result
    if args.json:
        document = result.to_dict()
        document["ok"] = not result.profile.failed_functions()
        document["search"] = {
            "verified": outcome.verified,
            "abstained": outcome.abstained,
            "space": outcome.space_keys,
            "input_digest": outcome.input_digest,
            "baseline_cycles": outcome.baseline_cycles,
            "module_cycles": outcome.module_cycles,
            "cycles_saved": outcome.cycles_saved,
            "winners": {
                f"{section}.{name}": key
                for (section, name), key in sorted(outcome.winners.items())
            },
        }
        print(json.dumps(document, indent=2, sort_keys=True))
        return 1 if result.profile.failed_functions() else 0

    if result.diagnostics_text:
        print(result.diagnostics_text, file=sys.stderr)
    if args.emit == "digest":
        print(result.digest)
    else:
        for line in result.report_lines():
            print(line)
        if outcome.abstained:
            print(
                "search abstained (baseline failed to simulate: "
                f"{outcome.abstained}); shipping the standard compile"
            )
        elif not outcome.verified:
            print(
                "search winners failed whole-module verification; "
                "shipping the baseline"
            )
        print(f"download module: {result.download.cells_used} cell(s), "
              f"{result.profile.download_words} words")
        if cache is not None:
            print(_cache_stats_line(cache))
        if variant_store is not None:
            print(_variant_store_stats_line(variant_store))
    return 1 if result.profile.failed_functions() else 0


def _parse_inputs(text: str) -> List[float]:
    if not text.strip():
        return []
    return [float(part) for part in text.split(",") if part.strip()]


def _is_binary_module(path: str) -> bool:
    if path == "-":
        return False
    try:
        with open(path, "rb") as handle:
            return handle.read(4) == b"WARP"
    except OSError:
        return False


def _cmd_run(args) -> int:
    array = WarpArrayModel(cell_count=args.cells)
    if _is_binary_module(args.file):
        from .asmlink.encode import read_module

        download = read_module(args.file)
    else:
        source = _read_source(args.file)
        try:
            result = SequentialCompiler(
                array=array, opt_level=args.opt_level
            ).compile(source, filename=args.file)
        except CompileError as error:
            for diagnostic in error.diagnostics:
                print(diagnostic.render(), file=sys.stderr)
            return 1
        download = result.download
    outcome = run_module(
        download,
        _parse_inputs(args.inputs),
        array=array,
        max_cycles=args.max_cycles,
    )
    print("outputs:", " ".join(repr(v) for v in outcome.outputs))
    print(f"cycles: {outcome.cycles}")
    return 0


def _cmd_bench(args) -> int:
    source = synthetic_program(args.size, args.functions)
    if args.backend != "sim":
        return _cmd_bench_live(args, source)
    result = SequentialCompiler().compile(source)
    sim = ClusterSimulation()
    sequential = sim.run_sequential(result.profile)
    from .parallel.schedule import fcfs_assignment

    if args.processors is None:
        assignment = one_function_per_processor(result.profile.functions)
    else:
        assignment = fcfs_assignment(
            result.profile.functions, args.processors
        )
    parallel = sim.run_parallel(result.profile, assignment)
    workers = min(len(result.profile.functions), assignment.processors)
    overhead = compute_overhead(sequential, parallel, workers)
    print(f"workload: {args.functions} x f_{args.size} "
          f"on {assignment.processors} workstation(s)")
    print(f"sequential elapsed: {sequential.elapsed:10.1f} virtual s")
    print(f"parallel elapsed:   {parallel.elapsed:10.1f} virtual s")
    print(f"speedup:            {sequential.elapsed / parallel.elapsed:10.2f}")
    print(f"total overhead:     {overhead.relative_total:9.1f}% of parallel time")
    print(f"system overhead:    {overhead.relative_system:9.1f}%")
    print(f"implementation:     {overhead.relative_implementation:9.1f}%")
    return 0


def _cmd_bench_live(args, source: str) -> int:
    """Real wall-clock bench of the execution backends on this host."""
    import contextlib
    import tempfile
    import time

    from .parallel.warm_pool import WarmPoolBackend

    if args.repeat < 1:
        print("warpcc: --repeat must be at least 1", file=sys.stderr)
        return 2
    if args.processors is not None and args.processors < 1:
        print("warpcc: --processors must be at least 1", file=sys.stderr)
        return 2

    start = time.perf_counter()
    sequential = SequentialCompiler().compile(source)
    sequential_wall = time.perf_counter() - start

    if args.backend == "serial":
        backend = SerialBackend()
    elif args.backend == "pool":
        backend = ProcessPoolBackend(max_workers=args.processors)
    else:
        backend = WarmPoolBackend(max_workers=args.processors)

    with contextlib.ExitStack() as stack:
        cache = None
        if not args.no_cache:
            from .cache import ArtifactCache

            cache_dir = args.cache_dir or stack.enter_context(
                tempfile.TemporaryDirectory(prefix="warpcc-bench-cache-")
            )
            cache = ArtifactCache(cache_dir)
        compiler = ParallelCompiler(
            backend=backend, cache=cache, owns_backend=True
        )

        walls = []
        result = None
        try:
            for _ in range(args.repeat):
                start = time.perf_counter()
                result = compiler.compile(source)
                walls.append(time.perf_counter() - start)
        finally:
            compiler.close()

        matches = result.digest == sequential.digest
        print(f"workload: {args.functions} x f_{args.size} "
              f"via {args.backend} backend "
              f"({result.profile.workers_used} worker(s) used)")
        print(f"sequential wall:    {sequential_wall:10.3f} s")
        for round_no, wall in enumerate(walls, start=1):
            print(f"parallel wall #{round_no}:  {wall:10.3f} s")
        best = min(walls)
        print(f"best speedup:       {sequential_wall / best:10.2f}x")
        hits = result.profile.phase1_cache_hits()
        print(f"phase-1 cache hits: {hits:10d} "
              f"(saved {result.profile.redundant_parse_work_saved()} work units)")
        if cache is not None:
            print(_cache_stats_line(cache))
        print(f"download identical to sequential: {'yes' if matches else 'NO'}")
        return 0 if matches else 1


def _cmd_fuzz(args) -> int:
    from .fuzz.oracle import (
        ALL_PIPELINES,
        DifferentialOracle,
        OracleConfig,
        run_fuzz_campaign,
    )

    if args.pipelines is None:
        pipelines = None  # oracle default: every in-process variant
    elif args.pipelines.strip().lower() == "all":
        pipelines = ALL_PIPELINES
    else:
        pipelines = tuple(
            part.strip() for part in args.pipelines.split(",") if part.strip()
        )
    config_kwargs = dict(
        opt_level=args.opt_level,
        cell_count=args.cells,
        check_semantics=not args.no_semantics,
        inject_miscompile=args.inject_miscompile,
    )
    if pipelines is not None:
        config_kwargs["pipelines"] = pipelines
    config = OracleConfig(**config_kwargs)

    def progress(seed: int, report) -> None:
        if not report.ok:
            print(f"seed {seed}: MISMATCH", file=sys.stderr)
            for line in report.describe():
                print(f"  {line}", file=sys.stderr)

    with DifferentialOracle(config) as oracle:
        result = run_fuzz_campaign(
            seed=args.seed,
            iterations=args.iterations,
            size_class=args.size_class,
            oracle=oracle,
            time_budget=args.time_budget,
            on_iteration=progress,
            stop_on_failure=not args.keep_going,
        )
        print(
            f"fuzz: {result.iterations_run} iteration(s), "
            f"{len(result.failures)} mismatch(es), "
            f"{result.elapsed:.1f}s "
            f"[size={args.size_class} base-seed={args.seed}]"
        )
        if result.ok:
            return 0
        counts = ", ".join(
            f"{kind}={count}" for kind, count in sorted(
                result.kind_counts().items()
            )
        )
        print(f"mismatch kinds: {counts}")
        for failure in result.failures:
            print(
                f"reproduce: warpcc fuzz --seed {failure.seed} "
                f"--iterations 1 --size-class {args.size_class}"
            )
        if args.minimize:
            from .fuzz.reduce import DeltaReducer, write_corpus_entry

            failure = result.failures[0]
            reducer = DeltaReducer(
                oracle,
                inputs=failure.program.inputs(),
                seed=failure.seed,
            )
            reduction = reducer.reduce(failure.program.source)
            print(
                f"minimized: {reduction.function_count} function(s), "
                f"{reduction.statement_count} statement(s) after "
                f"{reduction.oracle_runs} oracle run(s)"
            )
            path = write_corpus_entry(
                args.corpus_dir,
                source=reduction.source,
                seed=failure.seed,
                size_class=args.size_class,
                kinds=reduction.kinds,
                pipelines=list(config.pipelines),
                inputs=failure.program.inputs(),
                notes=(
                    "minimized by warpcc fuzz --minimize; original "
                    f"mismatches: {'; '.join(failure.report.describe())}"
                ),
            )
            print(f"corpus entry written: {path}")
    return 1


def _parse_tenant_weights(entries: List[str]) -> dict:
    weights = {}
    for entry in entries:
        name, sep, value = entry.partition("=")
        if not sep or not name.strip():
            raise ValueError(
                f"--tenant-weight expects TENANT=WEIGHT, got {entry!r}"
            )
        weights[name.strip()] = float(value)
    return weights


def _cmd_serve(args) -> int:
    from .parallel.warm_pool import WarmPoolBackend
    from .service import CompileService, ServiceSocketServer
    from .service.client import ADDRESS_ENV

    try:
        weights = _parse_tenant_weights(args.tenant_weight)
    except ValueError as error:
        print(f"warpcc: {error}", file=sys.stderr)
        return 2

    pool = WarmPoolBackend(max_workers=args.workers)
    backend = pool
    hub = None
    if args.fabric_port is not None:
        from .fabric import FabricHub, RemoteBackend

        # The warm pool doubles as the hub's local fallback: zero live
        # worker nodes degrades to exactly the single-machine service.
        hub = FabricHub(
            host=args.host, port=args.fabric_port, fallback=pool
        )
        backend = RemoteBackend(hub)
    if args.supervised:
        from .parallel.supervisor import SupervisedBackend

        backend = SupervisedBackend(
            backend,
            task_timeout=args.task_timeout,
            hedge_after=(
                args.hedge_after if args.hedge_after > 0 else None
            ),
        )
    cost_model = None
    if args.predict:
        from .predict import CostModel, ObservationStore

        # The observation tier shares the cache directory layout (its
        # own subdir), so --cache-dir governs where learning persists.
        cost_model = CostModel(ObservationStore(args.cache_dir))
    cache = None
    try:
        cache = _build_cache(args)
        service = CompileService(
            backend,
            cache,
            max_queued=args.max_queued,
            max_running=args.max_running,
            per_tenant_inflight=args.per_tenant,
            tenant_weights=weights,
            cost_model=cost_model,
            speculation=args.predict and not args.no_speculation,
            speculation_inflight=args.speculation_inflight,
            speculation_headroom=args.speculation_headroom,
        )
        server = ServiceSocketServer(
            service, host=args.host, port=args.port
        )
        print(
            f"warpcc service on {server.address} "
            f"({service.worker_count} worker(s), "
            f"max {args.max_running} concurrent job(s)); "
            f"clients: warpcc submit --connect {server.address} "
            f"or export {ADDRESS_ENV}={server.address}",
            flush=True,
        )
        if hub is not None:
            print(
                f"warpcc fabric on {hub.address}; nodes: "
                f"warpcc worker --connect {hub.address}",
                flush=True,
            )
        if cost_model is not None:
            speculation_state = (
                "off" if args.no_speculation else "on"
            )
            print(
                f"predictive scheduling on (speculation "
                f"{speculation_state}); editors: "
                f"warpcc watch FILE --connect {server.address}",
                flush=True,
            )
        server.serve_until_shutdown()
        return 0
    finally:
        # The service borrows the backend (see driver ownership rules);
        # the process that built the pool tears it down.
        if hub is not None:
            hub.close()
        _close_cache(cache)
        pool.shutdown()


def _format_event(event: dict) -> str:
    name = event.get("event", "?")
    parts = [f"[{event.get('job', '?')}] {name}"]
    if "function" in event:
        parts.append(event["function"])
    if "tasks" in event:
        parts.append(f"({event['tasks']} task(s))")
    return " ".join(parts)


def _cmd_submit(args) -> int:
    import json

    from .service import ServiceClient, ServiceError, resolve_address

    source = _read_source(args.file)
    try:
        client = ServiceClient(resolve_address(args.connect))
        job_id = client.submit(
            source,
            tenant=args.tenant,
            filename=args.file,
            priority=args.priority,
            opt_level=args.opt_level,
            cells=args.cells,
        )
        if args.no_wait:
            print(job_id)
            return 0

        def on_event(event: dict) -> None:
            print(_format_event(event), file=sys.stderr)

        job = client.wait(
            job_id,
            stream=not args.quiet,
            on_event=None if args.quiet else on_event,
        )
    except ServiceError as error:
        print(f"warpcc: {error} [{error.reason}]", file=sys.stderr)
        return 2
    except OSError as error:
        print(f"warpcc: service unreachable: {error}", file=sys.stderr)
        return 2

    if args.json:
        print(json.dumps(job, indent=2, sort_keys=True))
        return 0 if job.get("state") == "done" else 1
    state = job.get("state")
    if state != "done":
        print(f"warpcc: job {job_id} {state}: {job.get('error')}",
              file=sys.stderr)
        diagnostics = job.get("diagnostics")
        if diagnostics:
            print(diagnostics, file=sys.stderr)
        return 1
    print(job["digest"])
    print(
        f"job {job_id}: {job['tasks_done']}/{job['tasks_total']} "
        f"function(s) compiled, {job['cache_served']} served from cache",
        file=sys.stderr,
    )
    return 0


def _describe_watch_outcome(outcome: dict) -> str:
    reason = outcome.get("reason", "?")
    if reason == "speculating":
        names = ", ".join(outcome.get("functions", ())) or "?"
        line = (
            f"speculating on {outcome.get('dirty', 0)} function(s) "
            f"[job {outcome.get('job', '?')}]: {names}"
        )
        if outcome.get("superseded"):
            line += f" (superseded {outcome['superseded']})"
        return line
    if reason == "clean":
        return "no function changed; nothing to do"
    if reason == "parse-error":
        return "module does not parse yet; waiting for the next edit"
    return f"speculation skipped [{reason}]"


def _cmd_watch(args) -> int:
    import json
    import time

    from .service import ServiceClient, ServiceError, resolve_address

    try:
        client = ServiceClient(resolve_address(args.connect))
    except ServiceError as error:
        print(f"warpcc: {error} [{error.reason}]", file=sys.stderr)
        return 2
    watch_key = args.watch_key or args.file

    def push(source: str) -> Optional[dict]:
        try:
            return client.watch_update(
                source,
                watch=watch_key,
                filename=args.file,
                opt_level=args.opt_level,
                cells=args.cells,
            )
        except ServiceError as error:
            print(f"warpcc: {error} [{error.reason}]", file=sys.stderr)
            return None
        except OSError as error:
            print(f"warpcc: service unreachable: {error}", file=sys.stderr)
            return None

    def report(outcome: dict) -> None:
        if args.json:
            print(json.dumps(outcome, sort_keys=True), flush=True)
        else:
            print(_describe_watch_outcome(outcome), flush=True)

    try:
        last = _read_source(args.file)
    except OSError as error:
        print(f"warpcc: {error}", file=sys.stderr)
        return 2
    outcome = push(last)
    if outcome is None:
        return 2
    report(outcome)
    if args.once:
        return 0

    print(
        f"watching {args.file} (interval {args.interval}s, ^C to stop)",
        file=sys.stderr,
        flush=True,
    )
    try:
        while True:
            time.sleep(max(args.interval, 0.05))
            try:
                current = _read_source(args.file)
            except OSError:
                continue  # editor mid-save; retry next tick
            if current == last:
                continue
            last = current
            outcome = push(current)
            if outcome is not None:
                report(outcome)
    except KeyboardInterrupt:  # pragma: no cover - interactive exit
        return 0


def _cmd_status(args) -> int:
    import json

    from .service import ServiceClient, ServiceError, resolve_address

    try:
        client = ServiceClient(resolve_address(args.connect))
        reply = client.status(args.job, gantt=args.gantt)
    except ServiceError as error:
        print(f"warpcc: {error} [{error.reason}]", file=sys.stderr)
        return 2
    except OSError as error:
        print(f"warpcc: service unreachable: {error}", file=sys.stderr)
        return 2

    if args.json:
        print(json.dumps(reply, indent=2, sort_keys=True))
        return 0
    if args.job is not None:
        job = reply["job"]
        print(f"job {job['job']}: {job['state']} "
              f"(tenant {job['tenant']}, priority {job['priority']})")
        print(f"  tasks: {job['tasks_done']}/{job['tasks_total']} done, "
              f"{job['cache_served']} from cache")
        if job.get("error"):
            print(f"  error: {job['error']}")
        if job.get("digest"):
            print(f"  digest: {job['digest'].splitlines()[0]} ...")
    else:
        stats = reply["stats"]
        print(
            f"service: {stats['submitted']} submitted, "
            f"{stats['done']} done, {stats['failed']} failed, "
            f"{stats['cancelled']} cancelled, "
            f"{stats['rejected']} rejected; "
            f"utilization {stats['utilization']:.0%} "
            f"over {stats['workers']} worker(s)"
        )
        for job in reply["jobs"]:
            print(f"  {job['job']}: {job['state']:9s} "
                  f"tenant={job['tenant']} "
                  f"{job['tasks_done']}/{job['tasks_total']} tasks")
    if args.gantt and reply.get("gantt"):
        print(reply["gantt"])
    return 0


def _cmd_disasm(args) -> int:
    from .asmlink.encode import FormatError, read_module

    try:
        module = read_module(args.file)
    except (FormatError, OSError) as error:
        print(f"warpcc: {error}", file=sys.stderr)
        return 1
    print(module_digest(module))
    return 0


#: Transport fault rates for each ``warpcc worker --chaos-fault``
#: family.  Seeded and deterministic (see repro.fabric.chaos); the CI
#: fabric-chaos matrix drives these from the command line.
_WORKER_CHAOS_FAULTS = {
    "node-kill": {"kill_rate": 0.4},
    "heartbeat-drop": {"heartbeat_drop_rate": 0.7},
    "truncate": {"truncate_rate": 0.4},
    "delay-dup": {"delay_rate": 0.3, "duplicate_rate": 0.3},
    "mixed": {
        "kill_rate": 0.2,
        "heartbeat_drop_rate": 0.2,
        "truncate_rate": 0.15,
        "delay_rate": 0.15,
        "duplicate_rate": 0.15,
    },
}


def _cmd_worker(args) -> int:
    from .fabric import FabricChaos, WorkerNodeAgent

    if args.serial:
        from .parallel.local import SerialBackend

        backend = SerialBackend()
    else:
        from .parallel.warm_pool import WarmPoolBackend

        backend = WarmPoolBackend(max_workers=args.workers)
    chaos = None
    if args.chaos is not None:
        chaos = FabricChaos(
            args.chaos, **_WORKER_CHAOS_FAULTS[args.chaos_fault]
        )
    try:
        agent = WorkerNodeAgent(
            args.connect,
            backend,
            node_id=args.node_id,
            chaos=chaos,
        )
    except ValueError as error:
        print(f"warpcc: {error}", file=sys.stderr)
        return 2
    print(
        f"warpcc worker {agent.node_id}: {backend.worker_count} "
        f"worker(s) leased to {args.connect}",
        flush=True,
    )
    try:
        agent.run_forever()
        return 0
    except KeyboardInterrupt:  # pragma: no cover - interactive exit
        return 0
    finally:
        shutdown = getattr(backend, "shutdown", None)
        if shutdown is not None:
            shutdown()


def _cmd_cache_server(args) -> int:
    import threading

    from .cache.store import DEFAULT_MAX_BYTES
    from .fabric import CacheServiceServer

    server = CacheServiceServer(
        args.cache_dir,
        host=args.host,
        port=args.port,
        max_bytes=args.max_bytes or DEFAULT_MAX_BYTES,
    )
    print(
        f"warpcc cache tier on {server.address} "
        f"({server.store.entry_count()} entr(ies) on disk); "
        f"clients: warpcc compile --cache-url {server.address} "
        f"or export WARPCC_CACHE_URL={server.address}",
        flush=True,
    )
    try:
        threading.Event().wait()  # serve until interrupted
        return 0
    except KeyboardInterrupt:  # pragma: no cover - interactive exit
        return 0
    finally:
        server.close()


def main(argv: Optional[List[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    if args.command == "compile":
        return _cmd_compile(args)
    if args.command == "search":
        return _cmd_search(args)
    if args.command == "run":
        return _cmd_run(args)
    if args.command == "disasm":
        return _cmd_disasm(args)
    if args.command == "fuzz":
        return _cmd_fuzz(args)
    if args.command == "serve":
        return _cmd_serve(args)
    if args.command == "worker":
        return _cmd_worker(args)
    if args.command == "cache-server":
        return _cmd_cache_server(args)
    if args.command == "submit":
        return _cmd_submit(args)
    if args.command == "watch":
        return _cmd_watch(args)
    if args.command == "status":
        return _cmd_status(args)
    return _cmd_bench(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
