"""Workstations: named CPUs with busy-time accounting.

CPU work is modeled as plain delays (one compile process per workstation
at a time — the FIFO task chain the drivers build), so a workstation just
accumulates how many CPU-seconds it spent.  Contended resources (Ethernet,
file server) live in :mod:`repro.cluster.network`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict

from .events import Simulator


@dataclass
class Workstation:
    """One diskless SUN: a CPU plus accounting.

    ``speed`` models background load from the workstation's owner ("these
    workstations are in individual offices, but not all workstations are
    in use at all times", §3.3): a machine at speed 0.5 takes twice the
    wall-clock time for the same CPU demand.
    """

    name: str
    sim: Simulator
    speed: float = 1.0
    cpu_busy: float = 0.0
    free_at: float = 0.0

    def run_cpu(self, seconds: float, done: Callable[[], None]) -> None:
        """Burn ``seconds`` of CPU demand starting now; then call ``done``."""
        if seconds < 0:
            raise ValueError(f"negative CPU demand {seconds}")
        if self.speed <= 0:
            raise ValueError(f"machine {self.name!r} has no CPU speed")
        wall = seconds / self.speed
        self.cpu_busy += wall
        self.sim.schedule(wall, done)


class MachinePool:
    """The set of workstations participating in one compilation."""

    def __init__(self, sim: Simulator, names, speeds=None):
        self.sim = sim
        speeds = speeds or {}
        self.machines: Dict[str, Workstation] = {
            name: Workstation(name, sim, speed=speeds.get(name, 1.0))
            for name in names
        }

    def __getitem__(self, name: str) -> Workstation:
        return self.machines[name]

    def busy_times(self) -> Dict[str, float]:
        return {name: m.cpu_busy for name, m in self.machines.items()}
